//! The BFT replica: a [`bft_sim::Node`] implementing the full protocol —
//! normal-case three-phase ordering with all the paper's optimizations,
//! checkpoints and garbage collection, view changes, and state transfer.

use crate::checkpoint::{CheckpointSet, CheckpointTracker, OwnCheckpoint};
use crate::config::Config;
use crate::invariants::ReplicaAudit;
use crate::log::{Log, Slot};
use crate::messages::*;
use crate::recovery::{RecoveryManager, RecoveryStage};
use crate::service::Service;
use crate::types::{ClientId, ReplicaId, SeqNum, Timestamp, View};
use crate::viewchange::{compute_plan, validate_new_view, ViewChangeSet};
use crate::wire::Wire;
use bft_crypto::keychain::KeyChain;
use bft_crypto::md5::Digest;
use bft_sim::time::dur;
use bft_sim::{
    Context, CostKind, Counter, HealthSnapshot, Node, NodeId, Role, SpanEdge, TimerId, TraceMeta,
    TracePhase,
};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Timer tokens.
const TIMER_RESEND: u64 = 1;
const TIMER_VIEW_CHANGE: u64 = 2;
const TIMER_PIGGY: u64 = 3;
const TIMER_KEY_REFRESH: u64 = 4;
const TIMER_RECOVERY: u64 = 5;
const TIMER_LEASE: u64 = 6;
/// One-shot fast-path fallback timers: token is `TIMER_FASTPATH_BASE + seq`
/// (well above every sequence number a log window can reach).
const TIMER_FASTPATH_BASE: u64 = 1 << 32;

/// Bound on reads queued at a lease holder waiting for the next servable
/// window (lease handoff or state catch-up). Beyond it the oldest queued
/// read is evicted — counted, and its client told via BUSY so it backs
/// off instead of waiting out a retransmission timeout.
const LEASE_RO_CAP: usize = 256;

/// Bound on request bodies retained for batch resolution and recovery
/// serving ([`Replica::store_request`] evicts in insertion order).
const STORE_CAP: usize = 20_000;

/// Fault-injection behaviours for testing. A correct deployment uses
/// [`Behavior::Correct`]; the others make this replica Byzantine in a
/// specific, reproducible way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follow the protocol.
    #[default]
    Correct,
    /// Stop processing everything (fail-stop crash).
    Crashed,
    /// Process incoming messages but never send anything.
    Silent,
    /// As primary, send conflicting pre-prepares to different backups.
    EquivocatingPrimary,
    /// Send garbage authentication tags on every message.
    CorruptAuth,
    /// Execute correctly but reply with corrupted results.
    WrongResult,
    /// As the new primary of a view change, forge the NEW-VIEW `O` set.
    BadNewView,
    /// Serve corrupted snapshots to state-transfer requests.
    CorruptStateData,
    /// Stop producing checkpoints (a wedged background digester or full
    /// disk): the replica keeps ordering and executing but its stable
    /// point freezes, so it stalls at the log-window edge and limps along
    /// through repeated state transfers until healed.
    StaleState,
    /// Test-only: treat every executable slot as committed without
    /// waiting for a quorum. Exists to deliberately violate agreement so
    /// the invariant checker can be validated end to end.
    BrokenQuorumCheck,
}

/// A cached last reply for one client (BFT's reply cache, part of the
/// checkpointed state).
#[derive(Debug, Clone)]
struct CachedReply {
    timestamp: Timestamp,
    result: Vec<u8>,
    tentative: bool,
    view: View,
}

/// A read-only reply waiting for the committed prefix to catch up.
#[derive(Debug, Clone)]
struct WaitingRo {
    client: ClientId,
    reply: Reply,
}

/// Per-client admission-control state. Client timestamps are issued
/// consecutively, so `admitted_hw - served_hw` counts requests this
/// replica let past the gate that no reply has settled yet — including
/// work deep in the ordering pipeline that a queue-depth count misses
/// the moment a batch is proposed. A flooding client that abandons ops
/// faster than they execute drives the difference over
/// [`Config::admission_client_quota`] and trips a penalty window; a
/// correct closed-loop client never holds more than one.
#[derive(Debug, Clone, Copy, Default)]
struct ClientGate {
    /// Highest timestamp admitted past the gate (post-authentication).
    admitted_hw: Timestamp,
    /// Highest timestamp this replica replied to (execution, read-only
    /// or reply-cache). Serving ts settles every lower one too: a gap
    /// means the client abandoned or other replicas served those reads.
    served_hw: Timestamp,
    /// When the last admission happened. A watermark gap older than
    /// [`ADMIT_FORGIVE_MULT`] retry windows is forgiven: the admitted
    /// work was lost (e.g. discarded by a view change) and will never
    /// execute here, and holding the client to it would wedge it.
    last_admit_ns: u64,
    /// Requests are shed without further accounting until this instant.
    /// Armed when the quota first trips, not refreshed by further sheds,
    /// so a recovered client drains out of it in one window.
    penalty_until_ns: u64,
    /// BUSY send throttle: at most one per retry window, so a flood of
    /// shed requests cannot turn the pushback channel itself into load.
    last_busy_ns: u64,
}

/// Staleness bound on the admission watermarks, in units of
/// [`Config::busy_retry_after_ns`]: past this the admitted-but-unserved
/// gap is treated as abandoned rather than in flight.
const ADMIT_FORGIVE_MULT: u64 = 8;

/// Primary-side record of the outstanding read-lease grant round
/// (arXiv:2107.11144). One record covers all backups: grants are
/// multicast, and the write fence holds until every backup acked the
/// revoke or the conservative expiry passed.
#[derive(Debug, Clone)]
struct LeaseGrant {
    /// Conservative expiry at the primary: grant send time + duration.
    /// A holder measures from receipt, so its lease outlives this bound
    /// by at most one network delay — strictly less than the three
    /// delays the first post-fence write needs to complete, so the
    /// overhang cannot produce a stale read of a completed write.
    expires_at_ns: u64,
    /// A revoke is in flight for this grant.
    revoking: bool,
    /// The epoch the in-flight revoke carries (acks must echo it).
    revoke_epoch: u64,
    /// Backups that acked the revoke; the fence lifts at
    /// [`crate::types::Quorums::lease_revoke_quorum`] of them.
    acks: BTreeSet<ReplicaId>,
}

/// Holder-side record of the current read lease.
#[derive(Debug, Clone, Copy)]
struct HeldLease {
    /// Reads are served only once `last_executed` reached this sequence
    /// number (the primary's highest assignment at grant time), so the
    /// served state includes every write ordered before the grant.
    seq: SeqNum,
    /// Local expiry, measured from grant receipt.
    expires_at_ns: u64,
}

/// An in-flight hierarchical state transfer. The fetcher first obtains
/// the checkpoint's partition leaves (STATE-META), verifies them against
/// the quorum-agreed digest, then pulls only the partitions whose leaves
/// differ from its own state.
#[derive(Debug, Clone)]
struct StateFetch {
    /// Checkpoint sequence number being fetched.
    seq: SeqNum,
    /// Quorum-agreed checkpoint digest (the Merkle root of `leaves`).
    digest: Digest,
    /// The replica most recently asked; rotated on failure or timeout.
    target: ReplicaId,
    /// Verified partition leaves (service partitions followed by the
    /// reply-cache leaf). Empty until a valid STATE-META arrives.
    leaves: Vec<Digest>,
    /// Partition indices still to be transferred.
    missing: BTreeSet<u32>,
    /// The fetched, digest-verified reply-cache encoding (empty when the
    /// local cache already matched the leaf).
    cache_bytes: Vec<u8>,
}

impl StateFetch {
    fn new(seq: SeqNum, digest: Digest, target: ReplicaId) -> StateFetch {
        StateFetch {
            seq,
            digest,
            target,
            leaves: Vec::new(),
            missing: BTreeSet::new(),
            cache_bytes: Vec::new(),
        }
    }
}

/// The replica node.
pub struct Replica<S: Service> {
    cfg: Config,
    id: ReplicaId,
    keychain: KeyChain,
    service: S,
    log: Log,
    checkpoints: CheckpointSet,
    /// Live Merkle tree over the service's partition digests (plus the
    /// reply-cache leaf); each checkpoint re-hashes only dirty partitions.
    tracker: CheckpointTracker,
    view: View,
    /// Highest sequence number executed (including tentatively).
    last_executed: SeqNum,
    /// Highest sequence number executed with a committed certificate.
    last_final: SeqNum,
    /// Operations executed tentatively beyond `last_final` (≤ one batch).
    tentative_ops: usize,
    /// Reply-cache entries displaced by the current tentative batch, for
    /// rollback.
    tentative_cache_undo: Vec<(ClientId, Option<CachedReply>)>,
    /// Ordered (BTreeMap) so checkpoint encoding and retransmission scans
    /// are independent of hasher randomness.
    reply_cache: BTreeMap<ClientId, CachedReply>,
    /// Primary: last assigned sequence number.
    next_seq: SeqNum,
    /// Primary: requests waiting for a batch slot, kept per client so
    /// draining can round-robin across senders — one flooding client
    /// fills only its own lane and cannot starve the others. Keys with
    /// empty lanes are removed eagerly.
    pending_batch: BTreeMap<ClientId, VecDeque<Request>>,
    /// Total requests across all `pending_batch` lanes.
    pending_batch_len: usize,
    /// Round-robin drain position: the last client a request was taken
    /// from; the next drain starts strictly after it (wrapping).
    rr_cursor: ClientId,
    /// Identities already queued or proposed, to drop duplicates cheaply.
    queued: BTreeSet<(ClientId, Timestamp)>,
    /// Request bodies known by digest (separate request transmission and
    /// recovery serving). Bounded by `store_order` eviction.
    request_store: BTreeMap<Digest, Request>,
    /// Insertion order of `request_store`, for capacity eviction.
    store_order: VecDeque<Digest>,
    /// Requests this backup believes are outstanding (drives the
    /// view-change timer).
    pending_requests: BTreeSet<(ClientId, Timestamp)>,
    in_view_change: bool,
    /// The view we are trying to move to while `in_view_change`.
    pending_view: View,
    vc_set: ViewChangeSet,
    vc_timer: Option<TimerId>,
    vc_timeout_ns: u64,
    /// The NEW-VIEW that installed the current view, kept so it can be
    /// retransmitted to replicas discovered to still be in an earlier
    /// view (e.g. an ex-primary healed from a partition, which has no
    /// other way to learn that the group moved on).
    last_new_view: Option<NewView>,
    /// Per-destination earliest time of the next NEW-VIEW retransmission.
    nv_retx_after_ns: BTreeMap<ReplicaId, u64>,
    /// Pending piggybacked commit announcements.
    piggy_queue: Vec<(SeqNum, Digest)>,
    piggy_timer: Option<TimerId>,
    /// In-flight hierarchical state transfer, if any.
    fetching: Option<StateFetch>,
    /// Earliest time the next blocked-execution body fetch may be sent.
    next_body_fetch_ns: u64,
    /// Set when execution advanced, so the view-change timer restarts —
    /// a primary that makes progress is not suspected.
    exec_progress: bool,
    /// Highest sequence number ever executed (never regressed — not by
    /// view changes, not by recoveries). Only executions beyond it count
    /// as progress for the view-change timer: a recovery replaying its
    /// retained finalized suffix re-executes old sequence numbers every
    /// interval, and counting that as liveness evidence would let a
    /// wedged primary sit unsuspected forever.
    exec_high_water: SeqNum,
    /// Backfill votes: which peers asserted each (seq, digest) committed.
    backfill: BTreeMap<(SeqNum, Digest), BTreeSet<ReplicaId>>,
    waiting_ro: Vec<WaitingRo>,
    /// Primary: per-view grant/revoke epoch counter. Epochs totally order
    /// lease messages within a view, so a grant delayed past its own
    /// revoke cannot resurrect a lease.
    lease_epoch: u64,
    /// Primary: the outstanding read-lease grant round, if any.
    lease_grant: Option<LeaseGrant>,
    /// Primary: per-backup timestamps of view-matching liveness evidence
    /// (prepares, commits, status gossip, lease acks carrying our view).
    /// Grants are withheld without fresh evidence from `2f` backups, so a
    /// deposed or partitioned primary stops extending leases and its
    /// holders drain out within one duration.
    lease_evidence_ns: BTreeMap<ReplicaId, u64>,
    /// Primary: no new batch is proposed before this instant — the
    /// post-view-change wait-out for leases the previous primary granted.
    lease_order_gate_ns: u64,
    /// Holder: highest grant/revoke epoch seen in the current view.
    lease_epoch_seen: u64,
    /// Holder: the current read lease, if any.
    held_lease: Option<HeldLease>,
    /// Holder: reads queued for the next servable window (waiting out a
    /// write burst, a lease handoff, or state catch-up). Bounded by
    /// [`LEASE_RO_CAP`].
    waiting_lease_ro: Vec<Request>,
    /// Proactive-recovery state: our own recovery stage plus peer leases.
    recovery: RecoveryManager,
    /// Per-client admission bookkeeping: timestamp watermarks whose
    /// difference measures work admitted but not yet served (robust to
    /// the ordering pipeline draining quickly, unlike a queue count),
    /// plus the shed penalty window and BUSY send throttle. One entry
    /// per authenticated client — bounded by the principal set.
    gate: BTreeMap<ClientId, ClientGate>,
    /// Requests shed by admission control since startup (observer-only).
    requests_shed: u64,
    /// BUSY pushbacks sent since startup (observer-only).
    busy_sent: u64,
    /// Peak ingest-backlog depth ever reached (observer-only).
    backlog_high_watermark: u64,
    behavior: Behavior,
    /// Safety events (finalized batches, announced checkpoints) for the
    /// chaos invariant checker; drained via [`Replica::drain_audit`].
    audit: ReplicaAudit,
}

impl<S: Service> Replica<S> {
    /// Creates replica `id` for the given configuration and service.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `id >= n`.
    pub fn new(id: ReplicaId, cfg: Config, mut service: S) -> Replica<S> {
        cfg.validate();
        assert!(id < cfg.n(), "replica id out of range");
        let keychain = KeyChain::new(id, cfg.n());
        let cache_bytes = Self::encode_cache(&BTreeMap::new());
        let tracker = CheckpointTracker::new(&service, &cache_bytes);
        // The tracker just digested every partition; drop any dirty marks
        // accumulated while the service was constructed.
        service.take_dirty_partitions();
        let parts = if service.retain_checkpoint(0) {
            None
        } else {
            Some(
                (0..tracker.partition_count())
                    .map(|p| service.partition_snapshot(p))
                    .collect(),
            )
        };
        let genesis = OwnCheckpoint::new(tracker.leaves().to_vec(), cache_bytes, parts);
        let checkpoints = CheckpointSet::new(cfg.quorums, genesis);
        let vc_timeout_ns = cfg.view_change_timeout_ns;
        let log = Log::new(cfg.log_window);
        Replica {
            cfg,
            id,
            keychain,
            service,
            log,
            checkpoints,
            tracker,
            view: 0,
            last_executed: 0,
            last_final: 0,
            tentative_ops: 0,
            tentative_cache_undo: Vec::new(),
            reply_cache: BTreeMap::new(),
            next_seq: 0,
            pending_batch: BTreeMap::new(),
            pending_batch_len: 0,
            rr_cursor: 0,
            queued: BTreeSet::new(),
            request_store: BTreeMap::new(),
            store_order: VecDeque::new(),
            pending_requests: BTreeSet::new(),
            in_view_change: false,
            pending_view: 0,
            vc_set: ViewChangeSet::new(),
            vc_timer: None,
            vc_timeout_ns,
            last_new_view: None,
            nv_retx_after_ns: BTreeMap::new(),
            piggy_queue: Vec::new(),
            piggy_timer: None,
            fetching: None,
            next_body_fetch_ns: 0,
            exec_progress: false,
            exec_high_water: 0,
            backfill: BTreeMap::new(),
            waiting_ro: Vec::new(),
            lease_epoch: 0,
            lease_grant: None,
            lease_evidence_ns: BTreeMap::new(),
            lease_order_gate_ns: 0,
            lease_epoch_seen: 0,
            held_lease: None,
            waiting_lease_ro: Vec::new(),
            recovery: RecoveryManager::new(),
            gate: BTreeMap::new(),
            requests_shed: 0,
            busy_sent: 0,
            backlog_high_watermark: 0,
            behavior: Behavior::Correct,
            audit: ReplicaAudit::default(),
        }
    }

    /// Sets the fault-injection behaviour.
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// Chaos hook: silently corrupts the live service state (no crash, no
    /// dirty marks — see [`Service::corrupt_silently`]). Only a proactive
    /// recovery audit against a quorum-attested root can undo this.
    pub fn corrupt_state(&mut self, salt: u64) {
        self.service.corrupt_silently(salt);
    }

    /// True while this replica's own proactive recovery is in progress.
    pub fn recovering(&self) -> bool {
        self.recovery.in_progress()
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// True if this replica is the primary of its current view.
    pub fn is_primary(&self) -> bool {
        self.cfg.quorums.primary(self.view) == self.id
    }

    /// Highest executed sequence number (including tentative execution).
    pub fn last_executed(&self) -> SeqNum {
        self.last_executed
    }

    /// Highest sequence number executed with a committed certificate.
    pub fn last_committed_executed(&self) -> SeqNum {
        self.last_final
    }

    /// The last stable checkpoint sequence number.
    pub fn stable_checkpoint(&self) -> SeqNum {
        self.checkpoints.stable_seq()
    }

    /// The last stable checkpoint as `(seq, state root)` — the Merkle
    /// root over the service's partition digests, i.e. what a recovering
    /// replica's peers attest to and what convergence tests compare.
    pub fn stable_proof(&self) -> (SeqNum, Digest) {
        self.checkpoints.stable_proof()
    }

    /// Read access to the replicated service.
    pub fn service(&self) -> &S {
        &self.service
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Takes the accumulated safety audit (finalized batches and announced
    /// checkpoints), leaving it empty. The chaos invariant checker drains
    /// this after every simulation event.
    pub fn drain_audit(&mut self) -> ReplicaAudit {
        std::mem::take(&mut self.audit)
    }

    /// An observer-only, typed snapshot of this replica's externally
    /// observable state at simulated time `at_ns` — views, execution and
    /// checkpoint watermarks, queue depths, lease/recovery status. Pure
    /// read: taking a snapshot never changes protocol behaviour.
    pub fn health_snapshot(&self, at_ns: u64) -> HealthSnapshot {
        let lease = self.held_lease.as_ref().filter(|l| at_ns < l.expires_at_ns);
        HealthSnapshot {
            node: self.id,
            at_ns,
            view: self.view,
            role: if self.is_primary() {
                Role::Primary
            } else {
                Role::Backup
            },
            in_view_change: self.in_view_change,
            recovering: self.recovery.in_progress(),
            fetching_state: self.fetching.is_some(),
            last_executed: self.last_executed,
            last_final: self.last_final,
            last_stable: self.checkpoints.stable_seq(),
            next_seq: self.next_seq,
            log_slots: self.log.len() as u64,
            pending_batch: self.pending_batch_len as u64,
            pending_requests: self.pending_requests.len() as u64,
            waiting_ro: self.waiting_ro.len() as u64,
            waiting_lease_ro: self.waiting_lease_ro.len() as u64,
            lease_held: lease.is_some(),
            lease_expiry_ns: lease.map_or(0, |l| l.expires_at_ns),
            fast_path: self.cfg.fast_path,
            requests_shed: self.requests_shed,
            busy_sent: self.busy_sent,
            backlog_high_watermark: self.backlog_high_watermark,
        }
    }

    /// The armed bounds of every capped request-holding collection, as
    /// `(name, len, cap)` — what the chaos checker's `UnboundedGrowth`
    /// invariant audits after every event. The ingest backlog's cap has
    /// window slack on top of [`Config::admission_queue_cap`]: requests
    /// arriving inside already-ordered batches (pre-prepares, new-view
    /// requeues) were admitted upstream and bypass the local gate, but
    /// the log window bounds how many of those can be in flight.
    pub fn queue_bounds(&self) -> Vec<(&'static str, usize, usize)> {
        let mut out = vec![
            ("request_store", self.request_store.len(), STORE_CAP),
            (
                "waiting_lease_ro",
                self.waiting_lease_ro.len(),
                LEASE_RO_CAP,
            ),
        ];
        if self.cfg.admission_control {
            let slack = self.cfg.log_window as usize * self.cfg.max_batch_requests;
            let cap = self.cfg.admission_queue_cap + slack;
            out.push((
                "ingest_backlog",
                self.pending_batch_len + self.pending_requests.len(),
                cap,
            ));
            out.push(("queued", self.queued.len(), cap));
            out.push(("waiting_ro", self.waiting_ro.len(), cap));
        }
        out
    }

    // ------------------------------------------------------------------
    // Authentication and sending
    // ------------------------------------------------------------------

    fn others(&self) -> Vec<NodeId> {
        self.cfg.quorums.others(self.id)
    }

    /// Remembers a request body for batch resolution and recovery
    /// serving, with bounded memory.
    fn store_request(&mut self, req: Request) {
        let d = req.digest();
        if self.request_store.insert(d, req).is_none() {
            self.store_order.push_back(d);
            while self.store_order.len() > STORE_CAP {
                if let Some(old) = self.store_order.pop_front() {
                    self.request_store.remove(&old);
                }
            }
        }
    }

    fn maybe_corrupt(&self, auth: AuthTag) -> AuthTag {
        if self.behavior != Behavior::CorruptAuth {
            return auth;
        }
        match auth {
            AuthTag::Mac(mut m) => {
                m.tag[0] ^= 0xff;
                AuthTag::Mac(m)
            }
            AuthTag::Vector(mut a) => {
                for (_, m) in &mut a.entries {
                    m.tag[0] ^= 0xff;
                }
                AuthTag::Vector(a)
            }
            AuthTag::None => AuthTag::None,
        }
    }

    /// Multicasts `msg` to all other replicas with a MAC-vector
    /// authenticator, charging digest + MAC + send costs.
    fn multicast(&mut self, ctx: &mut Context<'_, Packet>, msg: Msg) {
        if matches!(self.behavior, Behavior::Silent | Behavior::Crashed) {
            return;
        }
        let body_bytes = msg.to_bytes();
        let d = bft_crypto::digest(&body_bytes);
        let cost = &self.cfg.cost;
        ctx.charge_kind(CostKind::Digest, cost.digest(body_bytes.len()));
        ctx.charge_kind(CostKind::Mac, cost.authenticator(self.cfg.n() - 1, 16));
        let auth = AuthTag::Vector(self.keychain.authenticate(d.as_bytes()));
        let auth = self.maybe_corrupt(auth);
        let packet = Packet { body: msg, auth };
        let wire = packet.wire_bytes();
        ctx.charge_kind(CostKind::Net, cost.send(wire));
        ctx.count_sent(packet.body.tag());
        ctx.multicast(&self.others(), packet, wire);
    }

    /// Sends `msg` point-to-point with a single MAC.
    fn send_to(&mut self, ctx: &mut Context<'_, Packet>, dst: NodeId, msg: Msg) {
        if matches!(self.behavior, Behavior::Silent | Behavior::Crashed) {
            return;
        }
        let body_bytes = msg.to_bytes();
        let d = bft_crypto::digest(&body_bytes);
        let cost = &self.cfg.cost;
        ctx.charge_kind(CostKind::Digest, cost.digest(body_bytes.len()));
        ctx.charge_kind(CostKind::Mac, cost.mac(16));
        let auth = AuthTag::Mac(self.keychain.mac_for(dst, d.as_bytes()));
        let auth = self.maybe_corrupt(auth);
        let packet = Packet { body: msg, auth };
        let wire = packet.wire_bytes();
        ctx.charge_kind(CostKind::Net, cost.send(wire));
        ctx.count_sent(packet.body.tag());
        ctx.send(dst, packet, wire);
    }

    /// Verifies packet-level authentication from a replica or client.
    fn verify_packet(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        packet: &Packet,
    ) -> bool {
        let body_bytes = packet.body.to_bytes();
        let cost = &self.cfg.cost;
        ctx.charge_kind(CostKind::Digest, cost.digest(body_bytes.len()));
        let d = bft_crypto::digest(&body_bytes);
        match &packet.auth {
            AuthTag::None => {
                // Only requests authenticate themselves.
                matches!(packet.body, Msg::Request(_))
            }
            AuthTag::Mac(m) => {
                ctx.charge_kind(CostKind::Mac, cost.mac(16));
                self.keychain.verify_from(from, d.as_bytes(), m)
            }
            AuthTag::Vector(a) => {
                ctx.charge_kind(CostKind::Mac, cost.mac(16));
                self.keychain.verify_authenticator(from, d.as_bytes(), a)
            }
        }
    }

    /// Verifies a request's embedded authenticator.
    fn verify_request(&mut self, ctx: &mut Context<'_, Packet>, req: &Request) -> bool {
        let cost = &self.cfg.cost;
        ctx.charge_kind(CostKind::Digest, cost.digest(req.op.len() + 21));
        ctx.charge_kind(CostKind::Mac, cost.mac(16));
        let d = req.digest();
        match &req.auth {
            AuthTag::Vector(a) => self
                .keychain
                .verify_authenticator(req.client, d.as_bytes(), a),
            AuthTag::Mac(m) => self.keychain.verify_from(req.client, d.as_bytes(), m),
            AuthTag::None => false,
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint state helpers (partition tree + reply cache)
    // ------------------------------------------------------------------

    /// Canonical encoding of a reply cache — the content under the
    /// checkpoint tree's reply-cache leaf.
    fn encode_cache(cache: &BTreeMap<ClientId, CachedReply>) -> Vec<u8> {
        // BTreeMap iteration is already client-id order, so the encoding
        // is canonical without an explicit sort.
        let mut buf = Vec::new();
        (cache.len() as u64).encode(&mut buf);
        for (c, e) in cache {
            c.encode(&mut buf);
            e.timestamp.encode(&mut buf);
            e.result.encode(&mut buf);
        }
        buf
    }

    /// Decodes a reply cache produced by [`Self::encode_cache`]. Entries
    /// restore as committed (`tentative: false`) in view `view`.
    fn decode_cache(bytes: &[u8], view: View) -> Option<BTreeMap<ClientId, CachedReply>> {
        let mut r = crate::wire::Reader::new(bytes);
        let n = u64::decode(&mut r).ok()?;
        let mut cache = BTreeMap::new();
        for _ in 0..n {
            let client = u32::decode(&mut r).ok()?;
            let ts = u64::decode(&mut r).ok()?;
            let result = Vec::<u8>::decode(&mut r).ok()?;
            cache.insert(
                client,
                CachedReply {
                    timestamp: ts,
                    result,
                    tentative: false,
                    view,
                },
            );
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(cache)
    }

    /// Produces the local checkpoint at `seq`: refreshes the incremental
    /// digest tree over the partitions dirtied since the previous
    /// checkpoint, charges simulated CPU for exactly that work, and
    /// records a *lazy* checkpoint — partition bytes are serialized only
    /// when the service cannot retain a copy-on-write version itself.
    fn make_checkpoint(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum) {
        if self.behavior == Behavior::StaleState {
            // Fault injection: the checkpointing machinery is wedged. The
            // replica keeps executing but never produces (or announces)
            // this checkpoint, so its stable point freezes.
            ctx.metrics().incr("replica.checkpoints_skipped_stale");
            return;
        }
        let cache_bytes = Self::encode_cache(&self.reply_cache);
        let stats = self.tracker.refresh(&mut self.service, &cache_bytes);
        let total = self.tracker.partition_count() + 1;
        let digest_ns = if self.cfg.incremental_checkpoints {
            self.cfg
                .cost
                .partitioned_digest(stats.dirty_parts + 1, stats.dirty_bytes, total)
        } else {
            // Ablation baseline: charge as if every partition were
            // re-hashed, the pre-partitioned checkpoint cost.
            let full_bytes: u64 = (0..self.tracker.partition_count())
                .map(|p| self.service.partition_size(p) as u64)
                .sum::<u64>()
                + cache_bytes.len() as u64;
            self.cfg.cost.partitioned_digest(total, full_bytes, total)
        };
        let cp_meta = TraceMeta {
            view: self.view,
            seq,
            ..TraceMeta::default()
        };
        ctx.trace(SpanEdge::Open, TracePhase::Checkpoint, cp_meta);
        ctx.charge_kind(CostKind::Digest, digest_ns);
        ctx.trace(SpanEdge::Close, TracePhase::Checkpoint, cp_meta);
        ctx.metrics().incr("replica.checkpoints_made");
        ctx.metrics().add("replica.checkpoint_digest_ns", digest_ns);
        let parts = if self.service.retain_checkpoint(seq) {
            None
        } else {
            Some(
                (0..self.tracker.partition_count())
                    .map(|p| self.service.partition_snapshot(p))
                    .collect(),
            )
        };
        self.checkpoints.note_own(
            seq,
            OwnCheckpoint::new(self.tracker.leaves().to_vec(), cache_bytes, parts),
        );
    }

    /// Restores service state and reply cache from our own checkpoint at
    /// `seq` (eagerly serialized parts or the service's retained
    /// copy-on-write versions). Returns `false` — leaving state
    /// unspecified — if any partition is unavailable or fails
    /// verification. For checkpoints we produced while healthy that
    /// indicates a bug, but a recovery audit may legitimately hit this
    /// when silent corruption reached the retained copies; the caller
    /// then falls back to fetching from peers (live partition digests are
    /// recomputed during the fetch, so an unspecified intermediate state
    /// is safe).
    fn restore_own_checkpoint(&mut self, seq: SeqNum) -> bool {
        let Some(own) = self.checkpoints.own(seq) else {
            return false;
        };
        let leaves = own.leaves.clone();
        let cache_bytes = own.cache_bytes.clone();
        let count = leaves.len().saturating_sub(1);
        // Gather every partition's bytes before mutating anything.
        let mut parts: Vec<Vec<u8>> = Vec::with_capacity(count);
        for p in 0..count {
            let bytes = match &own.parts {
                Some(eager) => eager.get(p).cloned(),
                None => self.service.retained_partition(seq, p as u32),
            };
            match bytes {
                Some(b) => parts.push(b),
                None => return false,
            }
        }
        for (p, bytes) in parts.iter().enumerate() {
            if self
                .service
                .restore_partition(p as u32, bytes, &leaves[p])
                .is_err()
            {
                return false;
            }
        }
        let Some(cache) = Self::decode_cache(&cache_bytes, self.view) else {
            return false;
        };
        self.reply_cache = cache;
        self.tracker = CheckpointTracker::new(&self.service, &cache_bytes);
        self.service.take_dirty_partitions();
        debug_assert_eq!(self.tracker.root(), CheckpointTracker::root_of(&leaves));
        true
    }

    // ------------------------------------------------------------------
    // Request handling and batching (primary)
    // ------------------------------------------------------------------

    /// Appends a request to its client's backlog lane and tracks the
    /// high-watermark. The caller is responsible for `queued` dedup.
    fn enqueue_pending(&mut self, req: Request) {
        self.pending_batch
            .entry(req.client)
            .or_default()
            .push_back(req);
        self.pending_batch_len += 1;
        self.note_backlog_hw();
    }

    fn note_backlog_hw(&mut self) {
        let depth = (self.pending_batch_len + self.pending_requests.len()) as u64;
        if depth > self.backlog_high_watermark {
            self.backlog_high_watermark = depth;
        }
    }

    /// The next backlog request in round-robin order without removing
    /// it: front of the first lane strictly after the cursor, wrapping.
    fn rr_peek(&self) -> Option<&Request> {
        self.rr_next_client()
            .and_then(|c| self.pending_batch.get(&c))
            .and_then(|lane| lane.front())
    }

    /// Removes and returns the request [`Self::rr_peek`] would see,
    /// advancing the cursor past its client.
    fn rr_pop(&mut self) -> Option<Request> {
        let client = self.rr_next_client()?;
        let lane = self.pending_batch.get_mut(&client)?;
        let req = lane.pop_front()?;
        if lane.is_empty() {
            self.pending_batch.remove(&client);
        }
        self.rr_cursor = client;
        self.pending_batch_len -= 1;
        Some(req)
    }

    fn rr_next_client(&self) -> Option<ClientId> {
        use std::ops::Bound;
        self.pending_batch
            .range((Bound::Excluded(self.rr_cursor), Bound::Unbounded))
            .next()
            .or_else(|| self.pending_batch.iter().next())
            .map(|(c, _)| *c)
    }

    /// Count of this client's requests admitted but not yet served —
    /// what [`Config::admission_client_quota`] bounds. The timestamp
    /// watermark difference sees work anywhere in the pipeline (backlog
    /// lanes, proposed batches awaiting execution); the explicit queue
    /// count backstops it against non-consecutive Byzantine timestamps.
    fn client_in_flight(&self, client: ClientId, now: u64) -> usize {
        let watermark = match self.gate.get(&client) {
            Some(g)
                if now.saturating_sub(g.last_admit_ns)
                    <= self
                        .cfg
                        .busy_retry_after_ns
                        .saturating_mul(ADMIT_FORGIVE_MULT) =>
            {
                g.admitted_hw.saturating_sub(g.served_hw) as usize
            }
            _ => 0,
        };
        let range = (client, Timestamp::MIN)..=(client, Timestamp::MAX);
        let held =
            self.queued.range(range.clone()).count() + self.pending_requests.range(range).count();
        watermark.max(held)
    }

    /// True while the client sits in the shed penalty window.
    fn client_penalized(&self, client: ClientId, now: u64) -> bool {
        self.gate
            .get(&client)
            .is_some_and(|g| now < g.penalty_until_ns)
    }

    /// Opens the penalty window on a quota trip. Not refreshed while
    /// already armed: a client that keeps flooding re-trips the quota
    /// after each window instead of being locked out forever.
    fn penalize(&mut self, client: ClientId, now: u64) {
        let window = self.cfg.busy_retry_after_ns;
        let g = self.gate.entry(client).or_default();
        if now >= g.penalty_until_ns {
            g.penalty_until_ns = now + window;
        }
    }

    /// Records an admission past the gate.
    fn note_admitted(&mut self, client: ClientId, ts: Timestamp, now: u64) {
        if !self.cfg.admission_control {
            return;
        }
        let g = self.gate.entry(client).or_default();
        if ts > g.admitted_hw {
            g.admitted_hw = ts;
        }
        g.last_admit_ns = now;
    }

    /// Records a reply at `ts`: everything at or below it is settled.
    fn note_served(&mut self, client: ClientId, ts: Timestamp) {
        if let Some(g) = self.gate.get_mut(&client) {
            if ts > g.served_hw {
                g.served_hw = ts;
            }
        }
    }

    /// Sheds an over-limit request: counted, never silently — the
    /// client hears BUSY and backs off instead of retransmitting into
    /// the same wall.
    fn shed_request(&mut self, ctx: &mut Context<'_, Packet>, client: ClientId, ts: Timestamp) {
        self.requests_shed += 1;
        ctx.metrics().incr("replica.requests_shed");
        ctx.count(Counter::RequestsShed);
        self.send_busy(ctx, client, ts);
    }

    fn send_busy(&mut self, ctx: &mut Context<'_, Packet>, client: ClientId, ts: Timestamp) {
        // One BUSY per retry window per client is enough to trigger the
        // backoff; answering every shed request of a flood would spend
        // the CPU and downlink the shed was supposed to protect.
        let now = ctx.now().nanos();
        let g = self.gate.entry(client).or_default();
        if g.last_busy_ns != 0 && now.saturating_sub(g.last_busy_ns) < self.cfg.busy_retry_after_ns
        {
            return;
        }
        g.last_busy_ns = now;
        self.busy_sent += 1;
        ctx.metrics().incr("replica.busy_sent");
        ctx.count(Counter::BusySent);
        let busy = Busy {
            client,
            timestamp: ts,
            replica: self.id,
            retry_after_ns: self.cfg.busy_retry_after_ns,
        };
        self.send_to(ctx, client, Msg::Busy(busy));
    }

    fn handle_request(&mut self, ctx: &mut Context<'_, Packet>, req: Request) {
        // Penalty-box fast path, deliberately *before* MAC verification:
        // under a flood the verify itself is the cost the shed exists to
        // avoid. Safe unverified because a penalty is only ever earned by
        // authenticated over-quota traffic — a spoofer reusing an honest
        // client's id finds it unpenalized, so this cannot be used to
        // starve anyone else. Work already admitted still passes through
        // to the dedup/retransmission handling below.
        if self.cfg.admission_control
            && self.client_penalized(req.client, ctx.now().nanos())
            && !self.queued.contains(&(req.client, req.timestamp))
            && !self.pending_requests.contains(&(req.client, req.timestamp))
        {
            self.shed_request(ctx, req.client, req.timestamp);
            return;
        }
        if !self.verify_request(ctx, &req) {
            ctx.metrics().incr("replica.bad_request_auth");
            return;
        }
        ctx.trace(
            SpanEdge::Instant,
            TracePhase::RequestRecv,
            TraceMeta {
                client: req.client as u64,
                timestamp: req.timestamp,
                view: self.view,
                bytes: req.op.len() as u64,
                ..TraceMeta::default()
            },
        );
        // Reply-cache interaction: drop stale, answer executed.
        if let Some(cached) = self.reply_cache.get(&req.client) {
            if req.timestamp < cached.timestamp {
                return;
            }
            if req.timestamp == cached.timestamp {
                let reply = Reply {
                    view: self.view,
                    timestamp: cached.timestamp,
                    client: req.client,
                    replica: self.id,
                    tentative: cached.tentative,
                    body: ReplyBody::Full(cached.result.clone()),
                };
                let client = req.client;
                self.note_served(client, req.timestamp);
                self.send_to(ctx, client, Msg::Reply(reply));
                return;
            }
        }
        if req.read_only && self.cfg.opts.read_only && self.service.is_read_only(&req.op) {
            if self.recovery.in_progress() {
                // Our state is suspect until the recovery audit completes;
                // a read-only reply computed from it could break
                // linearizability. Dropping the request makes the client
                // assemble its 2f+1 quorum from the healthy replicas or
                // retry through the ordered read-write path
                // (arXiv:2107.11144's read-liveness concern).
                ctx.metrics().incr("replica.ro_dropped_in_recovery");
                return;
            }
            if self.cfg.read_leases && !self.is_primary() {
                // Lease path: answer only inside a servable window (valid
                // lease, state caught up through the grant's sequence
                // number, nothing tentative outstanding) so every
                // up-to-date holder replies from the same quiescent state
                // and the client's 2f+1 matching rule completes in one
                // round. Otherwise queue the read for the next window
                // rather than answering from a state that cannot match.
                if self.lease_servable(ctx.now().nanos()) {
                    self.execute_read_only(ctx, req, true);
                } else {
                    if self.waiting_lease_ro.len() >= LEASE_RO_CAP {
                        // Evict the oldest parked read — but never
                        // silently: count it and push its client back
                        // with BUSY so it re-issues after a backoff
                        // instead of waiting out a full retry timeout.
                        let evicted = self.waiting_lease_ro.remove(0);
                        ctx.metrics().incr("replica.lease_reads_evicted");
                        self.shed_request(ctx, evicted.client, evicted.timestamp);
                    }
                    self.waiting_lease_ro.push(req);
                    ctx.metrics().incr("replica.lease_reads_queued");
                }
                return;
            }
            self.execute_read_only(ctx, req, false);
            return;
        }
        let identity = (req.client, req.timestamp);
        // Admission control: shed before admitting anything new. A
        // retransmission of work already held passes through (it is
        // deduplicated below, and shedding it would only delay the
        // client's reply), so the gate binds exactly the quantity the
        // quota describes — distinct in-flight requests per client.
        if self.cfg.admission_control
            && !self.queued.contains(&identity)
            && !self.pending_requests.contains(&identity)
        {
            let now = ctx.now().nanos();
            let backlog = self.pending_batch_len + self.pending_requests.len();
            if backlog >= self.cfg.admission_queue_cap
                || self.client_penalized(req.client, now)
                || self.client_in_flight(req.client, now) >= self.cfg.admission_client_quota
            {
                self.penalize(req.client, now);
                self.shed_request(ctx, req.client, req.timestamp);
                return;
            }
            self.note_admitted(req.client, req.timestamp, now);
        }
        self.store_request(req.clone());
        if self.is_primary() && !self.in_view_change {
            if self.queued.insert(identity) {
                self.enqueue_pending(req);
                self.try_propose(ctx);
            }
        } else {
            // Backup: remember the request and make sure the primary
            // eventually orders it.
            self.pending_requests.insert(identity);
            self.note_backlog_hw();
            self.ensure_vc_timer(ctx);
        }
    }

    fn execute_read_only(&mut self, ctx: &mut Context<'_, Packet>, req: Request, leased: bool) {
        self.note_served(req.client, req.timestamp);
        let mut result = self.service.execute_read_only(req.client, &req.op);
        ctx.charge_kind(CostKind::Exec, self.service.exec_cost_ns(&req.op, &result));
        if self.behavior == Behavior::WrongResult {
            tamper(&mut result);
        }
        ctx.charge_kind(CostKind::Digest, self.cfg.cost.digest(result.len()));
        if leased {
            // Record what was actually served, so the chaos checker can
            // cross-check every lease-served read against the global
            // linearization order (Violation::StaleLeaseRead).
            self.audit.note_lease_read(
                req.client,
                req.timestamp,
                ctx.now().nanos(),
                result.clone(),
            );
            ctx.metrics().incr("replica.lease_reads");
            ctx.count(Counter::LeaseReads);
            ctx.trace(
                SpanEdge::Instant,
                TracePhase::LeaseRead,
                TraceMeta {
                    client: req.client as u64,
                    timestamp: req.timestamp,
                    view: self.view,
                    ..TraceMeta::default()
                },
            );
        }
        let send_full =
            !self.cfg.opts.digest_replies || req.replier == self.id || req.replier == REPLIER_ALL;
        let body = if send_full {
            ReplyBody::Full(result)
        } else {
            ReplyBody::Digest(bft_crypto::digest(&result))
        };
        let reply = Reply {
            view: self.view,
            timestamp: req.timestamp,
            client: req.client,
            replica: self.id,
            // Read-only replies follow the 2f+1 matching rule.
            tentative: true,
            body,
        };
        if self.last_executed == self.last_final {
            let client = req.client;
            self.send_to(ctx, client, Msg::Reply(reply));
        } else {
            // Delay until everything executed so far has committed
            // (required for linearizability, Section 3.1).
            if self.cfg.admission_control && self.waiting_ro.len() >= self.cfg.admission_queue_cap {
                let evicted = self.waiting_ro.remove(0);
                let ts = evicted.reply.timestamp;
                self.shed_request(ctx, evicted.client, ts);
            }
            self.waiting_ro.push(WaitingRo {
                client: req.client,
                reply,
            });
        }
        ctx.metrics().incr("replica.read_only_execs");
    }

    // ------------------------------------------------------------------
    // Read leases (arXiv:2107.11144)
    // ------------------------------------------------------------------

    /// True while this holder may answer read-only requests locally: the
    /// lease is unexpired, the state is caught up through the grant's
    /// sequence number, and nothing tentative is outstanding (the served
    /// prefix is fully committed).
    fn lease_servable(&self, now: u64) -> bool {
        if self.in_view_change || self.recovery.in_progress() {
            return false;
        }
        let Some(l) = &self.held_lease else {
            return false;
        };
        now < l.expires_at_ns
            && self.last_executed >= l.seq
            && self.last_executed == self.last_final
    }

    /// Notes view-matching liveness evidence from a backup. Grants
    /// require fresh evidence from `2f` distinct backups, so a primary
    /// cut off from the majority — or deposed by a view change it has not
    /// learned about — stops extending leases within one evidence window.
    fn note_lease_evidence(&mut self, from: NodeId, now: u64) {
        if from < self.cfg.n() && from != self.id {
            self.lease_evidence_ns.insert(from, now);
        }
    }

    fn lease_evidence_ok(&self, now: u64) -> bool {
        let window = 2 * self.cfg.read_lease_ns;
        let fresh = self
            .lease_evidence_ns
            .values()
            .filter(|&&t| now.saturating_sub(t) <= window)
            .count();
        fresh >= self.cfg.quorums.lease_evidence_quorum()
    }

    /// Serves every queued read once a servable window opens (a fresh
    /// grant arrived, or execution caught up to the grant's sequence
    /// number and finality).
    fn flush_lease_reads(&mut self, ctx: &mut Context<'_, Packet>) {
        if self.waiting_lease_ro.is_empty() || !self.lease_servable(ctx.now().nanos()) {
            return;
        }
        let queued = std::mem::take(&mut self.waiting_lease_ro);
        for req in queued {
            self.execute_read_only(ctx, req, true);
        }
    }

    /// Drops all lease state a view change or recovery invalidates:
    /// the held lease, the grant round, and queued reads (the client's
    /// retransmission covers those).
    fn drop_lease_state(&mut self) {
        self.held_lease = None;
        self.lease_grant = None;
        self.waiting_lease_ro.clear();
    }

    /// The recurring lease tick (period: half the lease duration). The
    /// primary renews the group-wide grant — or, with writes pending,
    /// re-sends a possibly lost revoke and re-checks the fence. Holders
    /// only use it for expiry hygiene.
    fn on_lease_timer(&mut self, ctx: &mut Context<'_, Packet>) {
        let now = ctx.now().nanos();
        if self.held_lease.is_some_and(|l| now >= l.expires_at_ns) {
            self.held_lease = None;
        }
        if !self.is_primary() || self.in_view_change || self.recovery.in_progress() {
            return;
        }
        if !self.pending_batch.is_empty() {
            // Writes take priority over renewal: re-send the revoke in
            // case the first multicast was lost (a holder that never
            // hears it keeps serving until expiry, which only delays the
            // fence — never breaks it), and re-run the fence check so an
            // expired grant lifts it without waiting for more traffic.
            if let Some(g) = &self.lease_grant {
                if g.revoking && now < g.expires_at_ns {
                    let rv = LeaseRevoke {
                        view: self.view,
                        epoch: g.revoke_epoch,
                        replica: self.id,
                        ack: false,
                    };
                    self.multicast(ctx, Msg::LeaseRevoke(rv));
                }
            }
            self.try_propose(ctx);
            return;
        }
        self.issue_lease_grant(ctx);
    }

    /// Multicasts a fresh group-wide grant (or renewal), evidence
    /// permitting. The grant's sequence number is `next_seq`, so holders
    /// behind any in-flight writes refuse to serve until they execute
    /// past them — granting while writes are still committing is safe.
    fn issue_lease_grant(&mut self, ctx: &mut Context<'_, Packet>) {
        let now = ctx.now().nanos();
        if !self.lease_evidence_ok(now) {
            ctx.metrics().incr("replica.lease_grants_withheld");
            return;
        }
        self.lease_epoch += 1;
        let lease = Lease {
            view: self.view,
            epoch: self.lease_epoch,
            seq: self.next_seq,
            duration_ns: self.cfg.read_lease_ns,
        };
        self.lease_grant = Some(LeaseGrant {
            expires_at_ns: now + self.cfg.read_lease_ns,
            revoking: false,
            revoke_epoch: 0,
            acks: BTreeSet::new(),
        });
        ctx.metrics().incr("replica.lease_grants");
        ctx.count(Counter::LeaseGrants);
        self.multicast(ctx, Msg::Lease(lease));
    }

    /// Re-grants as soon as a write burst drains rather than waiting out
    /// the half-period renewal tick: holders park conflicting reads in
    /// `waiting_lease_ro` from revoke until the next grant, so leaving
    /// the re-grant to the timer stretches the read tail to half a lease
    /// period (tens of milliseconds) under even a 1% write mix.
    fn regrant_after_writes(&mut self, ctx: &mut Context<'_, Packet>) {
        if !self.cfg.read_leases
            || !self.is_primary()
            || self.in_view_change
            || self.recovery.in_progress()
            || self.lease_grant.is_some()
            || !self.pending_batch.is_empty()
            || !self.queued.is_empty()
        {
            return;
        }
        self.issue_lease_grant(ctx);
    }

    /// The primary's write fence: true while an unexpired grant is
    /// outstanding and not every backup has acked its revoke, or while
    /// the post-view-change wait-out is running. Sends the revoke on
    /// first entry. [`Replica::try_propose`] defers while this holds.
    fn lease_fence_holds(&mut self, ctx: &mut Context<'_, Packet>) -> bool {
        let now = ctx.now().nanos();
        if now < self.lease_order_gate_ns {
            // Leases granted by the previous primary are still draining;
            // ordering a write now could race one of them.
            return true;
        }
        let Some(g) = &self.lease_grant else {
            return false;
        };
        if now >= g.expires_at_ns {
            ctx.metrics().incr("replica.lease_fence_expiries");
            self.lease_grant = None;
            return false;
        }
        if g.acks.len() >= self.cfg.quorums.lease_revoke_quorum() {
            self.lease_grant = None;
            return false;
        }
        if !g.revoking {
            self.lease_epoch += 1;
            let epoch = self.lease_epoch;
            let g = self.lease_grant.as_mut().expect("checked above");
            g.revoking = true;
            g.revoke_epoch = epoch;
            ctx.metrics().incr("replica.lease_revokes");
            ctx.count(Counter::LeaseRevokes);
            let rv = LeaseRevoke {
                view: self.view,
                epoch,
                replica: self.id,
                ack: false,
            };
            self.multicast(ctx, Msg::LeaseRevoke(rv));
        }
        true
    }

    /// A grant (or renewal) from the current primary. Epochs below the
    /// highest seen are reordered leftovers and ignored; a recovering
    /// holder refuses the lease outright (its state is suspect).
    fn handle_lease(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, l: Lease) {
        if !self.cfg.read_leases {
            return;
        }
        if l.view < self.view {
            // A deposed primary is still granting: show it the NEW-VIEW
            // proof so it stops and rejoins.
            self.retransmit_new_view(ctx, from);
            return;
        }
        if l.view != self.view
            || self.in_view_change
            || from != self.cfg.quorums.primary(l.view)
            || from == self.id
        {
            return;
        }
        if l.epoch <= self.lease_epoch_seen {
            return;
        }
        self.lease_epoch_seen = l.epoch;
        if self.recovery.in_progress() {
            return;
        }
        let now = ctx.now().nanos();
        self.held_lease = Some(HeldLease {
            seq: l.seq,
            expires_at_ns: now + l.duration_ns,
        });
        ctx.metrics().incr("replica.leases_held");
        // The ack doubles as the primary's liveness evidence: a primary
        // that stops hearing these (and other view-matching traffic)
        // stops granting.
        let ack = LeaseRenew {
            view: l.view,
            epoch: l.epoch,
            replica: self.id,
            seq: self.last_executed,
        };
        self.send_to(ctx, from, Msg::LeaseRenew(ack));
        self.flush_lease_reads(ctx);
    }

    /// A holder's grant acknowledgment (primary side).
    fn handle_lease_renew(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, lr: LeaseRenew) {
        if lr.replica != from {
            ctx.metrics().incr("replica.spoofed_sender");
            return;
        }
        if !self.cfg.read_leases {
            return;
        }
        if lr.view < self.view {
            self.retransmit_new_view(ctx, from);
            return;
        }
        if lr.view != self.view || !self.is_primary() || self.in_view_change {
            return;
        }
        self.note_lease_evidence(from, ctx.now().nanos());
    }

    /// A revoke request (`ack == false`, holder side) or a revoke ack
    /// (`ack == true`, primary side).
    fn handle_lease_revoke(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        rv: LeaseRevoke,
    ) {
        if rv.replica != from {
            ctx.metrics().incr("replica.spoofed_sender");
            return;
        }
        if !self.cfg.read_leases {
            return;
        }
        if rv.view < self.view {
            self.retransmit_new_view(ctx, from);
            return;
        }
        if rv.view != self.view || self.in_view_change {
            return;
        }
        if rv.ack {
            if !self.is_primary() {
                return;
            }
            self.note_lease_evidence(from, ctx.now().nanos());
            let Some(g) = self.lease_grant.as_mut() else {
                return;
            };
            if !g.revoking || rv.epoch != g.revoke_epoch {
                return;
            }
            g.acks.insert(rv.replica);
            if g.acks.len() >= self.cfg.quorums.lease_revoke_quorum() {
                self.lease_grant = None;
                ctx.metrics().incr("replica.lease_fence_acked");
                self.try_propose(ctx);
            }
        } else {
            if from != self.cfg.quorums.primary(rv.view) {
                return;
            }
            if rv.epoch < self.lease_epoch_seen {
                // Superseded by a newer grant or revoke.
                return;
            }
            // Equal epochs re-ack: the revoke may be a retransmission
            // whose first ack was lost, and a missing ack stalls the
            // primary's fence until expiry.
            self.lease_epoch_seen = rv.epoch;
            self.held_lease = None;
            ctx.metrics().incr("replica.lease_revoke_acks");
            let ack = LeaseRevoke {
                view: rv.view,
                epoch: rv.epoch,
                replica: self.id,
                ack: true,
            };
            self.send_to(ctx, from, Msg::LeaseRevoke(ack));
        }
    }

    fn take_piggy(&mut self, ctx: &mut Context<'_, Packet>) -> Vec<(SeqNum, Digest)> {
        if self.piggy_queue.is_empty() {
            return Vec::new();
        }
        if let Some(t) = self.piggy_timer.take() {
            ctx.cancel_timer(t);
        }
        std::mem::take(&mut self.piggy_queue)
    }

    fn try_propose(&mut self, ctx: &mut Context<'_, Packet>) {
        if !self.is_primary() || self.in_view_change {
            return;
        }
        if self.cfg.read_leases && !self.pending_batch.is_empty() && self.lease_fence_holds(ctx) {
            // An unexpired lease is outstanding: revoke it (done inside
            // the fence check) and defer ordering until every holder
            // acked or the conservative expiry passed. Otherwise a
            // holder could serve a pre-write read while the write
            // commits — a linearizability violation.
            return;
        }
        // Load-aware batching: past half the admission cap, pack more
        // requests into each pre-prepare so the backlog drains in fewer
        // protocol rounds (the byte bound still applies, so individual
        // messages stay bounded).
        let max_batch_requests = if self.cfg.admission_control
            && self.pending_batch_len + self.pending_requests.len()
                > self.cfg.admission_queue_cap / 2
        {
            self.cfg.max_batch_requests * 4
        } else {
            self.cfg.max_batch_requests
        };
        loop {
            if self.pending_batch.is_empty() {
                break;
            }
            if self.cfg.opts.batching && self.next_seq >= self.last_executed + self.cfg.batch_window
            {
                break; // window full; requests stay queued
            }
            if self.next_seq + 1 > self.log.high() {
                break; // log window full; wait for a stable checkpoint
            }
            // Drop stale duplicates (already-executed requests re-queued
            // by retransmissions or view changes) before forming a batch.
            while let Some(front) = self.rr_peek() {
                let stale = self
                    .reply_cache
                    .get(&front.client)
                    .is_some_and(|c| c.timestamp >= front.timestamp);
                if stale {
                    self.rr_pop();
                } else {
                    break;
                }
            }
            if self.pending_batch.is_empty() {
                break;
            }
            // Form a batch, taking one request per client in round-robin
            // order so a flooding client fills at most its fair share of
            // each batch. The byte bound applies to what travels in the
            // pre-prepare: separate request transmission replaces large
            // bodies with digest references, which is exactly why it
            // "enables more requests per batch" (Section 4.4).
            let mut batch: Vec<Request> = Vec::new();
            let mut bytes = 0usize;
            while let Some(front) = self.rr_peek() {
                let separate = self.cfg.opts.separate_request_transmission
                    && front.op.len() > self.cfg.inline_threshold;
                let sz = if separate { 48 } else { front.op.len() + 32 };
                if !batch.is_empty()
                    && (!self.cfg.opts.batching
                        || bytes + sz > self.cfg.max_batch_bytes
                        || batch.len() >= max_batch_requests)
                {
                    break;
                }
                let req = self.rr_pop().expect("peeked request exists");
                let stale = self
                    .reply_cache
                    .get(&req.client)
                    .is_some_and(|c| c.timestamp >= req.timestamp);
                if stale {
                    continue;
                }
                bytes += sz;
                batch.push(req);
            }
            if batch.is_empty() {
                continue;
            }
            self.next_seq += 1;
            let seq = self.next_seq;
            let entries: Vec<BatchEntry> = batch
                .iter()
                .map(|req| {
                    if self.cfg.opts.separate_request_transmission
                        && req.op.len() > self.cfg.inline_threshold
                    {
                        BatchEntry::Ref {
                            client: req.client,
                            timestamp: req.timestamp,
                            digest: req.digest(),
                        }
                    } else {
                        BatchEntry::Full(req.clone())
                    }
                })
                .collect();
            let d = batch_digest(&entries);
            ctx.charge_kind(CostKind::Digest, self.cfg.cost.digest(entries.len() * 16));
            {
                let view = self.view;
                let slot = self.log.slot_mut(seq);
                slot.view = view;
                slot.digest = Some(d);
                slot.raw_entries = Some(entries.clone());
                slot.requests = Some(batch);
            }
            let piggy = self.take_piggy(ctx);
            let pp = PrePrepare {
                view: self.view,
                seq,
                entries,
                batch_digest: d,
                piggy_commits: piggy,
            };
            ctx.metrics().incr("replica.batches_proposed");
            ctx.trace(
                SpanEdge::Open,
                TracePhase::PrePrepare,
                TraceMeta {
                    view: self.view,
                    seq,
                    bytes: pp.entries.len() as u64,
                    ..TraceMeta::default()
                },
            );
            if self.behavior == Behavior::EquivocatingPrimary {
                self.equivocate(ctx, pp);
            } else {
                self.multicast(ctx, Msg::PrePrepare(pp));
            }
            self.check_prepared(ctx, seq);
        }
        self.regrant_after_writes(ctx);
    }

    /// Byzantine primary: half the backups get the real pre-prepare, the
    /// other half a conflicting one for the same (view, seq).
    fn equivocate(&mut self, ctx: &mut Context<'_, Packet>, pp: PrePrepare) {
        let mut alt = pp.clone();
        alt.entries.push(BatchEntry::Ref {
            client: 0,
            timestamp: u64::MAX,
            digest: bft_crypto::digest(&pp.seq.to_le_bytes()),
        });
        alt.batch_digest = batch_digest(&alt.entries);
        for (i, backup) in self.others().into_iter().enumerate() {
            let msg = if i % 2 == 0 {
                Msg::PrePrepare(pp.clone())
            } else {
                Msg::PrePrepare(alt.clone())
            };
            self.send_to(ctx, backup, msg);
        }
    }

    // ------------------------------------------------------------------
    // Three-phase protocol (backups)
    // ------------------------------------------------------------------

    fn handle_pre_prepare(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, pp: PrePrepare) {
        self.process_piggy(ctx, from, &pp.piggy_commits);
        if self.in_view_change
            || pp.view != self.view
            || from != self.cfg.quorums.primary(pp.view)
            || !self.log.in_window(pp.seq)
        {
            // A pre-prepare from the primary of an *earlier* view means
            // that replica missed the view change entirely; show it the
            // NEW-VIEW proof so it can rejoin.
            if pp.view < self.view && from == self.cfg.quorums.primary(pp.view) {
                self.retransmit_new_view(ctx, from);
            }
            return;
        }
        // Reject a conflicting assignment for the same (view, seq).
        if let Some(slot) = self.log.slot(pp.seq) {
            if slot.view == pp.view {
                if let Some(d) = slot.digest {
                    if d != pp.batch_digest {
                        ctx.metrics().incr("replica.conflicting_pre_prepare");
                    }
                    return; // already accepted (or conflicting: ignore)
                }
            }
        }
        // Validate the batch digest and inline request authenticators.
        if batch_digest(&pp.entries) != pp.batch_digest {
            ctx.metrics().incr("replica.bad_batch_digest");
            return;
        }
        ctx.charge_kind(
            CostKind::Digest,
            self.cfg.cost.digest(pp.entries.len() * 16),
        );
        let mut resolved: Vec<Request> = Vec::with_capacity(pp.entries.len());
        let mut missing = false;
        for entry in &pp.entries {
            match entry {
                BatchEntry::Full(req) => {
                    if !self.verify_request(ctx, req) {
                        ctx.metrics().incr("replica.bad_request_auth");
                        return;
                    }
                    self.store_request(req.clone());
                    resolved.push(req.clone());
                }
                BatchEntry::Ref { digest, .. } => match self.request_store.get(digest) {
                    Some(req) => resolved.push(req.clone()),
                    None => missing = true,
                },
            }
        }
        {
            let view = self.view;
            let slot = self.log.slot_mut(pp.seq);
            slot.view = view;
            slot.digest = Some(pp.batch_digest);
            slot.raw_entries = Some(pp.entries.clone());
            if !missing {
                slot.requests = Some(resolved);
            }
        }
        if missing {
            // Separate transmission raced ahead of the request multicast;
            // ask the primary for the body if it never shows up.
            let fb = FetchBatch {
                seq: pp.seq,
                batch_digest: pp.batch_digest,
            };
            let primary = self.cfg.quorums.primary(self.view);
            self.send_to(ctx, primary, Msg::FetchBatch(fb));
        }
        for entry in &pp.entries {
            self.pending_requests.insert(entry.identity());
        }
        self.ensure_vc_timer(ctx);
        ctx.trace(
            SpanEdge::Open,
            TracePhase::PrePrepare,
            TraceMeta {
                view: pp.view,
                seq: pp.seq,
                bytes: pp.entries.len() as u64,
                ..TraceMeta::default()
            },
        );
        // Multicast our prepare.
        let piggy = self.take_piggy(ctx);
        let prep = Prepare {
            view: pp.view,
            seq: pp.seq,
            batch_digest: pp.batch_digest,
            replica: self.id,
            piggy_commits: piggy,
        };
        {
            let me = self.id;
            let slot = self.log.slot_mut(pp.seq);
            slot.prepares.insert(me, pp.batch_digest);
            slot.prepare_sent = true;
        }
        self.multicast(ctx, Msg::Prepare(prep));
        self.check_prepared(ctx, pp.seq);
    }

    fn handle_prepare(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, prep: Prepare) {
        // The MAC proves the packet came from `from`; a vote claiming
        // another replica's id is a forgery (one Byzantine replica could
        // otherwise single-handedly complete a vote quorum).
        if prep.replica != from {
            ctx.metrics().incr("replica.spoofed_sender");
            return;
        }
        self.process_piggy(ctx, prep.replica, &prep.piggy_commits);
        if self.cfg.read_leases && prep.view == self.view {
            self.note_lease_evidence(from, ctx.now().nanos());
        }
        if self.in_view_change || prep.view != self.view || !self.log.in_window(prep.seq) {
            return;
        }
        if prep.replica == self.cfg.quorums.primary(prep.view) {
            return; // the primary's pre-prepare is its prepare
        }
        self.log
            .slot_mut(prep.seq)
            .prepares
            .insert(prep.replica, prep.batch_digest);
        self.check_prepared(ctx, prep.seq);
    }

    fn check_prepared(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum) {
        let q = self.cfg.quorums;
        let Some(slot) = self.log.slot(seq) else {
            return;
        };
        if !slot.prepared(&q) || slot.commit_sent || slot.fast_committed {
            self.try_execute(ctx);
            return;
        }
        if self.cfg.fast_path && !slot.fast_fallback {
            self.advance_fast_path(ctx, seq);
            return;
        }
        let d = slot.digest.expect("prepared implies digest");
        {
            let me = self.id;
            let slot = self.log.slot_mut(seq);
            slot.commit_sent = true;
            slot.commits.insert(me, d);
        }
        let prepared_meta = TraceMeta {
            view: self.view,
            seq,
            ..TraceMeta::default()
        };
        ctx.trace(SpanEdge::Close, TracePhase::PrePrepare, prepared_meta);
        ctx.trace(SpanEdge::Open, TracePhase::Commit, prepared_meta);
        if self.cfg.opts.piggyback_commits {
            self.piggy_queue.push((seq, d));
            if self.piggy_timer.is_none() {
                self.piggy_timer = Some(ctx.set_timer(self.cfg.piggyback_flush_ns, TIMER_PIGGY));
            }
        } else {
            let commit = Commit {
                view: self.view,
                seq,
                batch_digest: d,
                replica: self.id,
            };
            self.multicast(ctx, Msg::Commit(commit));
        }
        self.try_execute(ctx);
    }

    /// Fast-path bookkeeping for a prepared slot that is withholding its
    /// commit: arm the fallback timer on first entry, fast-commit once
    /// every replica's vote is in, fall back early once a conflicting
    /// vote proves the fast quorum can never complete.
    fn advance_fast_path(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum) {
        let q = self.cfg.quorums;
        if self.log.slot(seq).is_none_or(|slot| !slot.prepared(&q)) {
            return;
        }
        if !self.log.slot(seq).expect("checked above").fast_wait {
            let meta = TraceMeta {
                view: self.view,
                seq,
                ..TraceMeta::default()
            };
            ctx.trace(SpanEdge::Close, TracePhase::PrePrepare, meta);
            ctx.trace(SpanEdge::Open, TracePhase::FastCommit, meta);
            ctx.set_timer(self.cfg.fast_path_timeout_ns, TIMER_FASTPATH_BASE + seq);
            self.log.slot_mut(seq).fast_wait = true;
        }
        let slot = self.log.slot(seq).expect("checked above");
        if slot.fast_quorum_complete(&q) {
            let d = slot.digest.expect("prepared implies digest");
            self.log.slot_mut(seq).fast_committed = true;
            ctx.metrics().incr("replica.fast_commits");
            ctx.count(Counter::FastCommits);
            self.audit.note_fast_committed(seq, d);
            self.try_execute(ctx);
        } else if slot.fast_quorum_unreachable(&q) {
            self.fall_back_to_classic(ctx, seq);
        } else {
            self.try_execute(ctx);
        }
    }

    /// Classic fallback for a fast-waiting slot: multicast the commit the
    /// fast path was withholding and proceed three-phase. Idempotent.
    fn fall_back_to_classic(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum) {
        let q = self.cfg.quorums;
        let Some(slot) = self.log.slot(seq) else {
            return;
        };
        if slot.commit_sent || slot.fast_committed || !slot.prepared(&q) {
            return;
        }
        let d = slot.digest.expect("prepared implies digest");
        let was_waiting = slot.fast_wait;
        {
            let me = self.id;
            let slot = self.log.slot_mut(seq);
            slot.fast_fallback = true;
            slot.commit_sent = true;
            slot.commits.insert(me, d);
        }
        ctx.metrics().incr("replica.fast_fallbacks");
        ctx.count(Counter::FastFallbacks);
        let meta = TraceMeta {
            view: self.view,
            seq,
            ..TraceMeta::default()
        };
        if was_waiting {
            ctx.trace(SpanEdge::Close, TracePhase::FastCommit, meta);
        }
        ctx.trace(SpanEdge::Open, TracePhase::Commit, meta);
        let commit = Commit {
            view: self.view,
            seq,
            batch_digest: d,
            replica: self.id,
        };
        self.multicast(ctx, Msg::Commit(commit));
        self.try_execute(ctx);
    }

    /// Fast-path reaction to a peer's commit for `seq` in the current
    /// view: the sender abandoned (or never entered) the fast path on
    /// that slot, so waiting for the full fast quorum can only lose time
    /// — join the fallback. And a replica that already fast-committed
    /// never multicast a commit; it must answer once so the peer's
    /// classic certificate can complete (fast-committed implies
    /// prepared, so the commit is valid).
    fn note_peer_commit(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum) {
        if !self.cfg.fast_path {
            return;
        }
        let Some(slot) = self.log.slot(seq) else {
            return;
        };
        if slot.commit_sent {
            return;
        }
        if slot.fast_committed {
            let d = slot.digest.expect("fast-committed implies digest");
            let me = self.id;
            {
                let slot = self.log.slot_mut(seq);
                slot.commit_sent = true;
                slot.commits.insert(me, d);
            }
            let commit = Commit {
                view: self.view,
                seq,
                batch_digest: d,
                replica: me,
            };
            self.multicast(ctx, Msg::Commit(commit));
        } else if slot.fast_wait {
            self.fall_back_to_classic(ctx, seq);
        } else {
            self.log.slot_mut(seq).fast_fallback = true;
        }
    }

    fn handle_commit(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, c: Commit) {
        // Same sender check as prepares: a commit claiming another
        // replica's id is a forgery.
        if c.replica != from {
            ctx.metrics().incr("replica.spoofed_sender");
            return;
        }
        if self.cfg.read_leases && c.view == self.view {
            self.note_lease_evidence(from, ctx.now().nanos());
        }
        if self.in_view_change || c.view != self.view || !self.log.in_window(c.seq) {
            return;
        }
        self.log
            .slot_mut(c.seq)
            .commits
            .insert(c.replica, c.batch_digest);
        self.note_peer_commit(ctx, c.seq);
        self.try_execute(ctx);
    }

    fn process_piggy(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: ReplicaId,
        piggy: &[(SeqNum, Digest)],
    ) {
        for &(seq, d) in piggy {
            if self.in_view_change || !self.log.in_window(seq) {
                continue;
            }
            self.log.slot_mut(seq).commits.insert(from, d);
            self.note_peer_commit(ctx, seq);
        }
        if !piggy.is_empty() {
            self.try_execute(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Which ordering span is open on `slot` when finality arrives: the
    /// fast-commit span while the fast path is in charge, the classic
    /// commit span otherwise (including after fallback, which closed the
    /// fast span and opened a commit span).
    fn commit_close_phase(slot: &Slot) -> TracePhase {
        if slot.fast_wait && !slot.fast_fallback {
            TracePhase::FastCommit
        } else {
            TracePhase::Commit
        }
    }

    fn try_execute(&mut self, ctx: &mut Context<'_, Packet>) {
        let q = self.cfg.quorums;
        // Deliberate fault injection: skip the quorum checks entirely.
        let broken = self.behavior == Behavior::BrokenQuorumCheck;
        // Finalize the tentative batch once its commit certificate
        // completes (it sits *at* last_executed, before the loop's range).
        if self.last_executed > self.last_final {
            let seq = self.last_executed;
            let close_phase = self
                .log
                .slot(seq)
                .filter(|slot| slot.committed(&q) || broken)
                .map(Self::commit_close_phase);
            if let Some(phase) = close_phase {
                ctx.trace(
                    SpanEdge::Close,
                    phase,
                    TraceMeta {
                        view: self.view,
                        seq,
                        ..TraceMeta::default()
                    },
                );
                self.finalize_tentative(seq);
                self.note_exec_progress(seq);
            }
        }
        loop {
            let next = self.last_executed + 1;
            if !self.log.in_window(next) {
                break;
            }
            let Some(slot) = self.log.slot(next) else {
                break;
            };
            if slot.digest.is_none() {
                break;
            }
            if !slot.executable() {
                // Execution is blocked on missing request bodies; recover
                // them, rate-limited so every incoming message does not
                // trigger another fetch.
                if ctx.now().nanos() >= self.next_body_fetch_ns {
                    self.next_body_fetch_ns = ctx.now().nanos() + 20_000_000;
                    self.recover_bodies(ctx, next);
                }
                break;
            }
            if slot.committed(&q) || broken {
                if slot.executed_tentative {
                    let phase = Self::commit_close_phase(slot);
                    ctx.trace(
                        SpanEdge::Close,
                        phase,
                        TraceMeta {
                            view: self.view,
                            seq: next,
                            ..TraceMeta::default()
                        },
                    );
                    self.finalize_tentative(next);
                } else if self.last_executed > self.last_final && !broken {
                    // A tentative batch is pending at `last_executed`
                    // without a commit certificate (commits are per-slot;
                    // loss can complete `next`'s certificate first).
                    // Final-executing `next` on top of it would promote
                    // the uncertified batch to de-facto finality —
                    // `last_final` jumps over it, its slot never turns
                    // `executed_final`, and a view change may still
                    // re-order that sequence number with a different
                    // batch. Wait for the predecessor's certificate
                    // (retransmission, backfill, or a view-change
                    // rollback all unblock this).
                    break;
                } else {
                    self.execute_batch(ctx, next, false);
                }
            } else if self.cfg.opts.tentative_execution
                && next == self.last_final + 1
                && self.last_executed == self.last_final
                && slot.prepared(&q)
            {
                self.execute_batch(ctx, next, true);
                break; // nothing beyond one tentative batch
            } else {
                break;
            }
        }
        self.after_execution(ctx);
    }

    fn after_execution(&mut self, ctx: &mut Context<'_, Packet>) {
        // Flush read-only replies once the executed prefix is committed.
        if self.last_executed == self.last_final && !self.waiting_ro.is_empty() {
            let waiting = std::mem::take(&mut self.waiting_ro);
            for w in waiting {
                self.send_to(ctx, w.client, Msg::Reply(w.reply));
            }
        }
        // Execution progress may have opened a lease-servable window
        // (caught up to the grant's sequence number, tentative drained).
        if self.cfg.read_leases {
            self.flush_lease_reads(ctx);
        }
        // Announce checkpoints whose batches have committed.
        let announceable = self.checkpoints.announceable(self.last_final);
        for (seq, digest) in announceable {
            self.checkpoints.mark_announced(seq);
            // Audit at announce time, not creation time: a checkpoint cut
            // over a tentative batch may be rolled back and re-made, but
            // announced checkpoints must agree across correct replicas.
            self.audit.note_checkpoint(seq, digest);
            let cp = Checkpoint {
                seq,
                state_digest: digest,
                replica: self.id,
            };
            // Count our own claim as well.
            if let Some(stable) = self.checkpoints.add_claim(&cp) {
                self.adopt_stable(ctx, stable.seq, stable.digest);
            }
            self.multicast(ctx, Msg::Checkpoint(cp));
        }
        // The window may have opened for more proposals.
        self.try_propose(ctx);
        // Manage the view-change timer: quiet it when nothing is pending,
        // and restart it whenever execution makes progress — the timer
        // must measure how long the *oldest outstanding work* has been
        // stuck, not how long the system has been busy.
        if !self.in_view_change {
            if self.pending_requests.is_empty() {
                if let Some(t) = self.vc_timer.take() {
                    ctx.cancel_timer(t);
                }
            } else if self.exec_progress {
                if let Some(t) = self.vc_timer.take() {
                    ctx.cancel_timer(t);
                }
                self.ensure_vc_timer(ctx);
            }
        }
        self.exec_progress = false;
    }

    fn execute_batch(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum, tentative: bool) {
        let slot = self.log.slot(seq).expect("slot exists");
        let requests: Vec<Request> = slot.requests.clone().unwrap_or_default();
        let is_null = slot.is_null;
        let batch_digest = slot.digest;
        let mut ops = 0usize;
        let exec_phase = if tentative {
            TracePhase::ExecuteTentative
        } else {
            TracePhase::Execute
        };
        if !tentative {
            // Executing final means the commit certificate just completed.
            let phase = Self::commit_close_phase(slot);
            ctx.trace(
                SpanEdge::Close,
                phase,
                TraceMeta {
                    view: self.view,
                    seq,
                    ..TraceMeta::default()
                },
            );
        }
        ctx.trace(
            SpanEdge::Open,
            exec_phase,
            TraceMeta {
                view: self.view,
                seq,
                bytes: requests.len() as u64,
                ..TraceMeta::default()
            },
        );
        if tentative {
            self.tentative_cache_undo.clear();
        }
        for req in &requests {
            if is_null {
                break;
            }
            let identity = (req.client, req.timestamp);
            self.note_served(req.client, req.timestamp);
            // Only FINAL execution settles outstanding work. A tentative
            // execution may never commit (its certificate can stall when
            // peers recover or fall behind), leaving the client one reply
            // short of its 2f+1 tentative quorum forever — exactly the
            // wedge the view-change timer exists to break. Clearing the
            // pending entry here at tentative time disarms that timer on
            // the very replicas that hold the stalled batch.
            if !tentative {
                self.pending_requests.remove(&identity);
            }
            self.queued.remove(&identity);
            // Skip duplicates that slipped past queue-level dedup.
            if let Some(cached) = self.reply_cache.get(&req.client) {
                if req.timestamp <= cached.timestamp {
                    continue;
                }
            }
            let mut result = self.service.execute(req.client, &req.op);
            ops += 1;
            ctx.charge_kind(CostKind::Exec, self.service.exec_cost_ns(&req.op, &result));
            if self.behavior == Behavior::WrongResult {
                tamper(&mut result);
            }
            ctx.charge_kind(CostKind::Digest, self.cfg.cost.digest(result.len()));
            let result_digest = bft_crypto::digest(&result);
            let send_full = !self.cfg.opts.digest_replies
                || req.replier == self.id
                || req.replier == REPLIER_ALL;
            let body = if send_full {
                ReplyBody::Full(result.clone())
            } else {
                ReplyBody::Digest(result_digest)
            };
            let reply = Reply {
                view: self.view,
                timestamp: req.timestamp,
                client: req.client,
                replica: self.id,
                tentative,
                body,
            };
            let prev = self.reply_cache.insert(
                req.client,
                CachedReply {
                    timestamp: req.timestamp,
                    result,
                    tentative,
                    view: self.view,
                },
            );
            if tentative {
                self.tentative_cache_undo.push((req.client, prev));
            }
            let client = req.client;
            self.send_to(ctx, client, Msg::Reply(reply));
            ctx.metrics().incr("replica.ops_executed");
            ctx.trace(
                SpanEdge::Instant,
                TracePhase::ExecuteRequest,
                TraceMeta {
                    client: client as u64,
                    timestamp: req.timestamp,
                    view: self.view,
                    seq,
                    ..TraceMeta::default()
                },
            );
        }
        ctx.trace(
            SpanEdge::Close,
            exec_phase,
            TraceMeta {
                view: self.view,
                seq,
                bytes: ops as u64,
                ..TraceMeta::default()
            },
        );
        self.last_executed = seq;
        self.note_exec_progress(seq);
        {
            let slot = self.log.slot_mut(seq);
            if tentative {
                slot.executed_tentative = true;
            } else {
                slot.executed_final = true;
            }
        }
        if tentative {
            self.tentative_ops = ops;
        } else {
            self.last_final = seq;
            // A slot can reach finality without ever having been proposed
            // by us (backfilled `force_committed` slots after a recovery
            // or view change). The next proposal must start above it, or
            // a primary whose `next_seq` lags finality would assign
            // sequence numbers that collide with committed slots forever.
            self.next_seq = self.next_seq.max(seq);
            self.service.commit_prefix(ops);
            if let Some(d) = batch_digest {
                self.audit.note_committed(seq, d);
            }
        }
        // Checkpoint at interval boundaries.
        if seq.is_multiple_of(self.cfg.checkpoint_interval) {
            self.make_checkpoint(ctx, seq);
        }
    }

    fn finalize_tentative(&mut self, seq: SeqNum) {
        debug_assert_eq!(seq, self.last_executed);
        let ops = self.tentative_ops;
        self.tentative_ops = 0;
        self.tentative_cache_undo.clear();
        self.last_final = seq;
        self.next_seq = self.next_seq.max(seq);
        self.service.commit_prefix(ops);
        if let Some(d) = self.log.slot(seq).and_then(|s| s.digest) {
            self.audit.note_committed(seq, d);
        }
        let view = self.view;
        {
            let slot = self.log.slot_mut(seq);
            slot.executed_final = true;
        }
        // The batch's requests are settled only now that it is final —
        // execution left them pending so the view-change timer keeps
        // covering a tentative batch whose certificate stalls.
        if let Some(requests) = self.log.slot(seq).and_then(|s| s.requests.as_ref()) {
            for req in requests {
                self.pending_requests.remove(&(req.client, req.timestamp));
            }
        }
        // Upgrade cached replies so retransmissions get committed replies.
        for entry in self.reply_cache.values_mut() {
            if entry.tentative && entry.view <= view {
                entry.tentative = false;
            }
        }
    }

    fn rollback_tentative(&mut self) {
        if self.last_executed == self.last_final {
            return;
        }
        debug_assert_eq!(self.last_executed, self.last_final + 1);
        self.service.rollback_suffix(self.tentative_ops);
        for (client, prev) in self.tentative_cache_undo.drain(..).rev() {
            match prev {
                Some(entry) => {
                    self.reply_cache.insert(client, entry);
                }
                None => {
                    self.reply_cache.remove(&client);
                }
            }
        }
        let seq = self.last_executed;
        if let Some(_slot) = self.log.slot(seq) {
            self.log.slot_mut(seq).executed_tentative = false;
        }
        self.tentative_ops = 0;
        self.last_executed = self.last_final;
        // Read-only replies executed against rolled-back state are stale.
        self.waiting_ro.clear();
    }

    // ------------------------------------------------------------------
    // Checkpoints and state transfer
    // ------------------------------------------------------------------

    fn handle_checkpoint(&mut self, ctx: &mut Context<'_, Packet>, cp: Checkpoint) {
        if let Some(stable) = self.checkpoints.add_claim(&cp) {
            self.adopt_stable(ctx, stable.seq, stable.digest);
        }
    }

    fn adopt_stable(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum, digest: Digest) {
        if seq <= self.checkpoints.stable_seq() {
            return;
        }
        match self.checkpoints.own(seq) {
            Some(own) if own.digest == digest => {
                self.checkpoints.make_stable(seq, digest);
                self.service.release_checkpoints_below(seq);
                self.log.collect_garbage(seq);
                self.backfill.retain(|&(s, _), _| s > seq);
                ctx.metrics().incr("replica.stable_checkpoints");
                ctx.count(Counter::StableCheckpoints);
            }
            _ => {
                // No local checkpoint at a quorum-stable sequence number.
                // If the gap is small we are only momentarily behind and
                // will produce the checkpoint ourselves; a real gap means
                // we missed whole stretches of the log and must transfer.
                if seq > self.last_executed + self.cfg.checkpoint_interval {
                    self.start_state_transfer(ctx, seq, digest);
                }
            }
        }
    }

    fn start_state_transfer(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum, digest: Digest) {
        if let Some(f) = &self.fetching {
            if f.seq >= seq {
                return;
            }
        }
        let target = (self.id + 1) % self.cfg.n();
        self.fetching = Some(StateFetch::new(seq, digest, target));
        self.send_to(ctx, target, Msg::FetchState(FetchState { seq }));
        ctx.metrics().incr("replica.state_transfers_started");
        ctx.trace(
            SpanEdge::Open,
            TracePhase::StateTransfer,
            TraceMeta {
                view: self.view,
                seq,
                ..TraceMeta::default()
            },
        );
    }

    /// Rotates the fetch target and re-sends the current phase's request
    /// (STATE-META if the leaves are unverified, otherwise the missing
    /// partitions). Also drives the resend-timer keep-alive.
    fn retry_state_transfer(&mut self, ctx: &mut Context<'_, Packet>) {
        let Some(fetch) = &mut self.fetching else {
            return;
        };
        let next = (fetch.target + 1) % self.cfg.n();
        fetch.target = next;
        let seq = fetch.seq;
        let msg = if fetch.leaves.is_empty() {
            Msg::FetchState(FetchState { seq })
        } else {
            Msg::FetchParts(FetchParts {
                seq,
                parts: fetch.missing.iter().copied().collect(),
            })
        };
        self.send_to(ctx, next, msg);
    }

    fn handle_fetch_state(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, fs: FetchState) {
        if let Some(own) = self.checkpoints.own(fs.seq) {
            let meta = StateMeta {
                seq: fs.seq,
                leaves: own.leaves.clone(),
            };
            self.send_to(ctx, from, Msg::StateMeta(meta));
        }
    }

    fn handle_state_meta(&mut self, ctx: &mut Context<'_, Packet>, sm: StateMeta) {
        let Some(fetch) = &self.fetching else {
            return;
        };
        if sm.seq != fetch.seq || !fetch.leaves.is_empty() || sm.leaves.is_empty() {
            return;
        }
        // Verify the advertised leaves against the quorum-agreed
        // checkpoint digest before trusting any of them.
        ctx.charge_kind(CostKind::Digest, self.cfg.cost.digest(sm.leaves.len() * 16));
        if CheckpointTracker::root_of(&sm.leaves) != fetch.digest {
            ctx.metrics().incr("replica.state_transfer_bad_meta");
            self.retry_state_transfer(ctx);
            return;
        }
        // Diff the leaves against our own partition digests: partitions
        // we already hold at the right version never cross the network.
        let count = (sm.leaves.len() - 1) as u32;
        let mut missing: BTreeSet<u32> = BTreeSet::new();
        let same_layout = count == self.service.partition_count();
        for p in 0..count {
            ctx.charge_kind(CostKind::Digest, self.cfg.cost.digest_fixed_ns);
            if !(same_layout && self.service.partition_digest(p) == sm.leaves[p as usize]) {
                missing.insert(p);
            }
        }
        if bft_crypto::digest(&Self::encode_cache(&self.reply_cache)) != sm.leaves[count as usize] {
            missing.insert(count);
        }
        ctx.metrics().add(
            "replica.state_parts_skipped",
            u64::from(count + 1) - missing.len() as u64,
        );
        let fetch = self.fetching.as_mut().expect("checked above");
        fetch.leaves = sm.leaves;
        fetch.missing = missing;
        if fetch.missing.is_empty() {
            self.finish_state_transfer(ctx);
        } else {
            let seq = fetch.seq;
            let target = fetch.target;
            let parts: Vec<u32> = fetch.missing.iter().copied().collect();
            self.send_to(ctx, target, Msg::FetchParts(FetchParts { seq, parts }));
        }
    }

    fn handle_fetch_parts(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, fp: FetchParts) {
        let Some(own) = self.checkpoints.own(fp.seq) else {
            return;
        };
        let cache_idx = (own.leaves.len() - 1) as u32;
        let mut parts: Vec<(u32, Vec<u8>)> = Vec::new();
        for &p in fp.parts.iter().take(own.leaves.len()) {
            let bytes = if p == cache_idx {
                Some(own.cache_bytes.clone())
            } else if let Some(eager) = &own.parts {
                eager.get(p as usize).cloned()
            } else {
                // Lazy path: serialize the retained copy-on-write version
                // only now that a peer actually asked for it.
                self.service.retained_partition(fp.seq, p)
            };
            if let Some(mut b) = bytes {
                if self.behavior == Behavior::CorruptStateData {
                    if let Some(x) = b.first_mut() {
                        *x ^= 0xff;
                    } else {
                        b.push(0xde);
                    }
                }
                parts.push((p, b));
            }
        }
        if !parts.is_empty() {
            self.send_to(ctx, from, Msg::PartData(PartData { seq: fp.seq, parts }));
        }
    }

    fn handle_part_data(&mut self, ctx: &mut Context<'_, Packet>, pd: PartData) {
        let Some(mut fetch) = self.fetching.take() else {
            return;
        };
        if pd.seq != fetch.seq || fetch.leaves.is_empty() {
            self.fetching = Some(fetch);
            return;
        }
        let cache_idx = (fetch.leaves.len() - 1) as u32;
        let mut corrupt = false;
        let mut fetched_bytes = 0u64;
        for (p, bytes) in &pd.parts {
            let p = *p;
            if !fetch.missing.contains(&p) {
                continue;
            }
            let leaf = fetch.leaves[p as usize];
            ctx.charge_kind(CostKind::Digest, self.cfg.cost.digest(bytes.len()));
            let ok = if p == cache_idx {
                // The cache is installed atomically at the end; verify
                // and hold the bytes for now.
                bft_crypto::digest(bytes) == leaf && Self::decode_cache(bytes, self.view).is_some()
            } else {
                // Per-partition verify-before-apply: a bad partition is
                // rejected without needing a fallback snapshot.
                self.service.restore_partition(p, bytes, &leaf).is_ok()
            };
            if !ok {
                corrupt = true;
                continue;
            }
            if p == cache_idx {
                fetch.cache_bytes = bytes.clone();
            }
            fetch.missing.remove(&p);
            fetched_bytes += bytes.len() as u64;
        }
        ctx.metrics()
            .add("replica.state_bytes_fetched", fetched_bytes);
        ctx.count_add(Counter::StateTransferBytes, fetched_bytes);
        let done = fetch.missing.is_empty();
        self.fetching = Some(fetch);
        if corrupt {
            // A faulty replica sent bytes that do not match the verified
            // leaves; the bad partitions stay missing. Try another peer.
            ctx.metrics().incr("replica.state_transfer_bad_snapshot");
            self.retry_state_transfer(ctx);
        } else if done {
            self.finish_state_transfer(ctx);
        }
    }

    /// Every partition matches the verified leaves: install the reply
    /// cache, rebuild the digest tree, and adopt the checkpoint.
    fn finish_state_transfer(&mut self, ctx: &mut Context<'_, Packet>) {
        let Some(fetch) = self.fetching.take() else {
            return;
        };
        debug_assert!(fetch.missing.is_empty());
        let seq = fetch.seq;
        let digest = fetch.digest;
        let cache_bytes = if fetch.cache_bytes.is_empty() {
            // The local cache already matched the checkpoint's leaf.
            Self::encode_cache(&self.reply_cache)
        } else {
            let cache =
                Self::decode_cache(&fetch.cache_bytes, self.view).expect("verified when fetched");
            self.reply_cache = cache;
            fetch.cache_bytes
        };
        self.tracker = CheckpointTracker::new(&self.service, &cache_bytes);
        self.service.take_dirty_partitions();
        if self.tracker.root() != digest {
            // Partition layout mismatch or a service restore bug; restart
            // the transfer from scratch against another peer.
            ctx.metrics().incr("replica.state_transfer_bad_snapshot");
            let target = (fetch.target + 1) % self.cfg.n();
            self.fetching = Some(StateFetch::new(seq, digest, target));
            self.send_to(ctx, target, Msg::FetchState(FetchState { seq }));
            return;
        }
        // The adopted state is final; undo information for any lingering
        // tentative executions is void (unfetched partitions matched the
        // checkpoint exactly, so rolling them back would be wrong).
        self.service.commit_prefix(usize::MAX);
        self.tentative_ops = 0;
        self.tentative_cache_undo.clear();
        self.waiting_ro.clear();
        // Adoption may move execution backwards (recovery audits target
        // the group's stable point); anything above must re-execute from
        // the restored state, so stale execution markers are poison.
        self.log.clear_executed_above(seq);
        self.last_executed = seq;
        self.last_final = seq;
        self.next_seq = self.next_seq.max(seq);
        let parts = if self.service.retain_checkpoint(seq) {
            None
        } else {
            Some(
                (0..self.tracker.partition_count())
                    .map(|p| self.service.partition_snapshot(p))
                    .collect(),
            )
        };
        self.checkpoints
            .note_own(seq, OwnCheckpoint::new(fetch.leaves, cache_bytes, parts));
        self.checkpoints.mark_announced(seq);
        self.checkpoints.make_stable(seq, digest);
        self.service.release_checkpoints_below(seq);
        self.log.collect_garbage(seq);
        ctx.metrics().incr("replica.state_transfers_completed");
        ctx.count(Counter::StateTransfers);
        ctx.trace(
            SpanEdge::Close,
            TracePhase::StateTransfer,
            TraceMeta {
                view: self.view,
                seq,
                ..TraceMeta::default()
            },
        );
        // If this transfer was a recovery audit (or subsumed one aimed at
        // an older checkpoint), every partition now provably matches a
        // quorum-attested root: the recovery is complete.
        if self.recovery.auditing_seq().is_some_and(|a| a <= seq) {
            self.complete_recovery(ctx, seq, digest);
        }
        self.try_execute(ctx);
    }

    fn handle_status(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, st: Status) {
        // Status gossip carrying our view is liveness evidence for lease
        // grants — it flows even when the group is idle, so a quiet but
        // connected primary keeps granting.
        if self.cfg.read_leases && st.view == self.view && from < self.cfg.n() {
            self.note_lease_evidence(from, ctx.now().nanos());
        }
        // Backfill a lagging peer with batches we know committed. Slots at
        // or below our stable checkpoint are gone; the peer will recover
        // those via state transfer driven by checkpoint claims.
        if st.last_executed >= self.last_final {
            return;
        }
        let mut sent = 0;
        for seq in st.last_executed + 1..=self.last_final {
            if sent >= 8 {
                break;
            }
            let Some(slot) = self.log.slot(seq) else {
                continue;
            };
            let (Some(d), Some(raw)) = (slot.digest, slot.raw_entries.clone()) else {
                continue;
            };
            if !slot.executed_final {
                continue;
            }
            // Keep backfill frames small: strip bodies beyond the inline
            // threshold (the peer fetches them separately).
            let entries: Vec<BatchEntry> = raw
                .into_iter()
                .map(|e| match e {
                    BatchEntry::Full(r) if r.op.len() > self.cfg.inline_threshold => {
                        BatchEntry::Ref {
                            client: r.client,
                            timestamp: r.timestamp,
                            digest: r.digest(),
                        }
                    }
                    other => other,
                })
                .collect();
            sent += 1;
            self.send_to(
                ctx,
                from,
                Msg::CommittedBatch(CommittedBatch {
                    seq,
                    batch_digest: d,
                    entries,
                }),
            );
        }
    }

    fn handle_committed_batch(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        cb: CommittedBatch,
    ) {
        if !self.log.in_window(cb.seq) || cb.seq <= self.last_executed {
            return;
        }
        if batch_digest(&cb.entries) != cb.batch_digest {
            return;
        }
        let votes = self.backfill.entry((cb.seq, cb.batch_digest)).or_default();
        votes.insert(from);
        if votes.len() < self.cfg.quorums.witness_quorum() {
            // Stash the bodies either way; they are digest-bound.
            for entry in &cb.entries {
                if let BatchEntry::Full(req) = entry {
                    if self.verify_request(ctx, req) {
                        self.store_request(req.clone());
                    }
                }
            }
            return;
        }
        // f+1 distinct peers assert commitment: at least one is correct.
        ctx.metrics().incr("replica.backfilled_batches");
        for entry in &cb.entries {
            if let BatchEntry::Full(req) = entry {
                if self.verify_request(ctx, req) {
                    self.store_request(req.clone());
                }
            }
        }
        {
            let view = self.view;
            let slot = self.log.slot_mut(cb.seq);
            if slot.digest.is_none() {
                slot.view = view;
                slot.digest = Some(cb.batch_digest);
            }
            if slot.digest == Some(cb.batch_digest) {
                slot.raw_entries.get_or_insert(cb.entries);
                slot.force_committed = true;
            }
        }
        self.resolve_pending_batches(ctx);
    }

    /// Recovers the missing bodies blocking slot `seq`: individual
    /// requests when the batch entries are known, the whole batch
    /// otherwise (post-view-change).
    fn recover_bodies(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum) {
        let Some(slot) = self.log.slot(seq) else {
            return;
        };
        let Some(d) = slot.digest else { return };
        // Rotate recovery targets deterministically.
        let step = 1 + ((ctx.now().nanos() / 20_000_000) as u32 % (self.cfg.n() - 1));
        let target = (self.id + step) % self.cfg.n();
        match &slot.raw_entries {
            Some(raw) => {
                let missing: Vec<Digest> = raw
                    .iter()
                    .filter_map(|e| match e {
                        BatchEntry::Ref { digest, .. }
                            if !self.request_store.contains_key(digest) =>
                        {
                            Some(*digest)
                        }
                        _ => None,
                    })
                    .collect();
                if missing.is_empty() {
                    self.resolve_pending_batches(ctx);
                    return;
                }
                ctx.metrics().incr("replica.body_recoveries");
                self.send_to(
                    ctx,
                    target,
                    Msg::FetchRequests(FetchRequests { digests: missing }),
                );
            }
            None => {
                ctx.metrics().incr("replica.batch_recoveries");
                self.send_to(
                    ctx,
                    target,
                    Msg::FetchBatch(FetchBatch {
                        seq,
                        batch_digest: d,
                    }),
                );
            }
        }
    }

    fn handle_fetch_requests(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        fr: FetchRequests,
    ) {
        // Cap the response so recovery traffic cannot congest the very
        // links whose overload caused the loss.
        let mut budget = 64 * 1024usize;
        let mut requests: Vec<Request> = Vec::new();
        for d in fr.digests.iter().take(64) {
            let Some(req) = self.request_store.get(d) else {
                continue;
            };
            if req.op.len() + 64 > budget {
                break;
            }
            budget -= req.op.len() + 64;
            requests.push(req.clone());
        }
        if !requests.is_empty() {
            self.send_to(ctx, from, Msg::RequestData(RequestData { requests }));
        }
    }

    fn handle_request_data(&mut self, ctx: &mut Context<'_, Packet>, rd: RequestData) {
        let mut any = false;
        for req in rd.requests {
            if !self.verify_request(ctx, &req) {
                continue;
            }
            self.store_request(req);
            any = true;
        }
        if any {
            // Keep the recovery stream flowing: the resolve below runs
            // try_execute, which fetches the next missing bodies without
            // waiting out the pacing interval.
            self.next_body_fetch_ns = 0;
            self.resolve_pending_batches(ctx);
        }
    }

    fn handle_fetch_batch(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, fb: FetchBatch) {
        let Some(slot) = self.log.slot(fb.seq) else {
            return;
        };
        if slot.digest != Some(fb.batch_digest) {
            return;
        }
        let Some(reqs) = &slot.requests else { return };
        let entries: Vec<BatchEntry> = reqs.iter().cloned().map(BatchEntry::Full).collect();
        self.send_to(
            ctx,
            from,
            Msg::BatchData(BatchData {
                seq: fb.seq,
                entries,
            }),
        );
    }

    fn handle_batch_data(&mut self, ctx: &mut Context<'_, Packet>, bd: BatchData) {
        if !self.log.in_window(bd.seq) {
            return;
        }
        let Some(slot) = self.log.slot(bd.seq) else {
            return;
        };
        if slot.requests.is_some() || slot.digest.is_none() {
            return;
        }
        let want = slot.digest.expect("checked");
        // The fetched bodies must hash to the digest we prepared against.
        let entries_digest = batch_digest(&bd.entries);
        if entries_digest != want {
            return;
        }
        let mut resolved = Vec::with_capacity(bd.entries.len());
        for entry in &bd.entries {
            match entry {
                BatchEntry::Full(req) => {
                    if !self.verify_request(ctx, req) {
                        return;
                    }
                    self.store_request(req.clone());
                    resolved.push(req.clone());
                }
                BatchEntry::Ref { .. } => return, // fetch answers must inline
            }
        }
        self.log.slot_mut(bd.seq).requests = Some(resolved);
        self.try_execute(ctx);
    }

    /// Called when a request body arrives that might complete a pending
    /// pre-prepare (separate request transmission).
    fn resolve_pending_batches(&mut self, ctx: &mut Context<'_, Packet>) {
        let pending: Vec<SeqNum> = self
            .log
            .iter()
            .filter(|(_, slot)| slot.digest.is_some() && slot.requests.is_none())
            .map(|(seq, _)| seq)
            .collect();
        for seq in pending {
            let Some(slot) = self.log.slot(seq) else {
                continue;
            };
            let Some(raw) = slot.raw_entries.clone() else {
                continue;
            };
            let mut resolved = Vec::with_capacity(raw.len());
            let mut complete = true;
            for entry in &raw {
                match entry {
                    BatchEntry::Full(req) => resolved.push(req.clone()),
                    BatchEntry::Ref { digest, .. } => match self.request_store.get(digest) {
                        Some(req) => resolved.push(req.clone()),
                        None => {
                            complete = false;
                            break;
                        }
                    },
                }
            }
            if complete {
                self.log.slot_mut(seq).requests = Some(resolved);
            }
        }
        self.try_execute(ctx);
    }

    /// Records execution of `seq` as view-change-timer progress — but
    /// only the first time that sequence number executes. Re-execution
    /// (a recovery replaying its retained finalized suffix, a new view
    /// re-driving old slots) completes no outstanding work and says
    /// nothing about the current primary's health.
    fn note_exec_progress(&mut self, seq: SeqNum) {
        if seq > self.exec_high_water {
            self.exec_high_water = seq;
            self.exec_progress = true;
        }
    }

    // ------------------------------------------------------------------
    // View changes
    // ------------------------------------------------------------------

    fn ensure_vc_timer(&mut self, ctx: &mut Context<'_, Packet>) {
        if self.vc_timer.is_none() && !self.is_primary() && !self.in_view_change {
            self.vc_timer = Some(ctx.set_timer(self.vc_timeout_ns, TIMER_VIEW_CHANGE));
        }
    }

    fn start_view_change(&mut self, ctx: &mut Context<'_, Packet>, target: View) {
        if target <= self.view || (self.in_view_change && target <= self.pending_view) {
            return;
        }
        self.in_view_change = true;
        self.pending_view = target;
        self.rollback_tentative();
        // A lease from the suspected view must not outlive it here:
        // serving reads while the group re-elects could miss writes the
        // new primary is about to re-order.
        self.drop_lease_state();
        let vc = ViewChange {
            new_view: target,
            last_stable: self.checkpoints.stable_seq(),
            stable_digest: self.checkpoints.stable_digest(),
            prepared: self.log.prepared_infos(&self.cfg.quorums),
            // Fast-path vote reports: `f+1` matching ones prove a
            // fast-committed batch into the new view.
            fast_votes: if self.cfg.fast_path {
                self.log.fast_vote_infos(self.id, &self.cfg.quorums)
            } else {
                Vec::new()
            },
            replica: self.id,
        };
        self.vc_set.add(vc.clone());
        ctx.metrics().incr("replica.view_changes_started");
        ctx.count(Counter::ViewChanges);
        ctx.trace(
            SpanEdge::Open,
            TracePhase::ViewChange,
            TraceMeta {
                view: target,
                ..TraceMeta::default()
            },
        );
        self.multicast(ctx, Msg::ViewChange(vc));
        // Wait for the new view with a doubled timeout, capped so a long
        // partition cannot inflate it unboundedly — after a heal the next
        // election starts within the configured ceiling.
        self.vc_timeout_ns = self
            .vc_timeout_ns
            .saturating_mul(2)
            .min(self.cfg.view_change_timeout_max_ns);
        if let Some(t) = self.vc_timer.take() {
            ctx.cancel_timer(t);
        }
        self.vc_timer = Some(ctx.set_timer(self.vc_timeout_ns, TIMER_VIEW_CHANGE));
        self.maybe_build_new_view(ctx, target);
    }

    /// Sends the NEW-VIEW that installed our current view to a replica
    /// observed operating in an earlier view. Without this, a replica
    /// that was cut off while the rest of the group changed views (the
    /// asymmetric-partition scenario: an isolated primary that clients
    /// can still reach) escalates solo view changes forever and never
    /// rejoins. Rate-limited per destination.
    fn retransmit_new_view(&mut self, ctx: &mut Context<'_, Packet>, to: ReplicaId) {
        let Some(nv) = &self.last_new_view else {
            return;
        };
        if nv.view != self.view || to == self.id {
            return;
        }
        let now = ctx.now().nanos();
        let gate = self.nv_retx_after_ns.entry(to).or_insert(0);
        if now < *gate {
            return;
        }
        *gate = now + self.cfg.resend_interval_ns.max(20_000_000);
        let nv = nv.clone();
        ctx.metrics().incr("replica.new_view_retransmits");
        ctx.count(Counter::NewViewRetransmits);
        self.send_to(ctx, to, Msg::NewView(nv));
    }

    fn handle_view_change(&mut self, ctx: &mut Context<'_, Packet>, vc: ViewChange) {
        if vc.new_view <= self.view {
            // The voter is trying to leave a view we already left; it is
            // lagging, not us — hand it the proof of the current view.
            self.retransmit_new_view(ctx, vc.replica);
            return;
        }
        self.vc_set.add(vc.clone());
        // Join a view change supported by f+1 replicas (liveness rule).
        let current = if self.in_view_change {
            self.pending_view
        } else {
            self.view
        };
        if let Some(join) = self.vc_set.join_view(current, &self.cfg.quorums) {
            self.start_view_change(ctx, join);
        }
        self.maybe_build_new_view(ctx, vc.new_view);
    }

    fn maybe_build_new_view(&mut self, ctx: &mut Context<'_, Packet>, target: View) {
        if self.cfg.quorums.primary(target) != self.id {
            return;
        }
        if !self.vc_set.has_vote(target, self.id) {
            return;
        }
        if !self.in_view_change || self.pending_view != target {
            return;
        }
        let Some(votes) = self.vc_set.quorum(target, &self.cfg.quorums) else {
            return;
        };
        let plan = compute_plan(&votes, &self.cfg.quorums);
        // Attach the batch bodies we have for re-proposed digests — but
        // keep the NEW-VIEW small enough to survive congested links;
        // backups recover anything else through the fetch path.
        const MAX_ATTACHED_BYTES: usize = 32 * 1024;
        let mut attached = 0usize;
        let mut batches = Vec::new();
        for &(seq, d) in &plan.pre_prepares {
            if d == NULL_DIGEST {
                continue;
            }
            if let Some(slot) = self.log.slot(seq) {
                if slot.digest == Some(d)
                    || slot.raw_entries.as_deref().map(batch_digest) == Some(d)
                {
                    if let Some(reqs) = &slot.requests {
                        let size: usize = reqs.iter().map(|r| r.op.len() + 64).sum();
                        if attached + size > MAX_ATTACHED_BYTES {
                            continue;
                        }
                        attached += size;
                        batches.push((
                            seq,
                            reqs.iter()
                                .cloned()
                                .map(BatchEntry::Full)
                                .collect::<Vec<_>>(),
                        ));
                    }
                }
            }
        }
        let mut pre_prepares = plan.pre_prepares.clone();
        if self.behavior == Behavior::BadNewView {
            // Forge the recomputable part: append a bogus assignment.
            pre_prepares.push((plan.max_s + 1, bft_crypto::digest(b"forged")));
        }
        let nv = NewView {
            view: target,
            view_changes: votes,
            pre_prepares,
            batches: batches.clone(),
        };
        ctx.metrics().incr("replica.new_views_sent");
        if self.behavior != Behavior::BadNewView {
            self.last_new_view = Some(nv.clone());
        }
        self.multicast(ctx, Msg::NewView(nv));
        if self.behavior != Behavior::BadNewView {
            self.install_new_view(ctx, target, plan, batches);
        }
    }

    fn handle_new_view(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, nv: NewView) {
        if nv.view <= self.view || from != self.cfg.quorums.primary(nv.view) {
            return;
        }
        let plan = match validate_new_view(&nv, &self.cfg.quorums) {
            Ok(p) => p,
            Err(_) => {
                // The new primary is faulty too: move on.
                ctx.metrics().incr("replica.bad_new_view");
                self.start_view_change(ctx, nv.view + 1);
                return;
            }
        };
        self.rollback_tentative();
        self.last_new_view = Some(nv.clone());
        self.install_new_view(ctx, nv.view, plan, nv.batches);
    }

    fn install_new_view(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        view: View,
        plan: crate::viewchange::NewViewPlan,
        batches: Vec<(SeqNum, Vec<BatchEntry>)>,
    ) {
        self.view = view;
        self.in_view_change = false;
        self.pending_view = view;
        self.vc_set.prune_through(view);
        self.vc_timeout_ns = self.cfg.view_change_timeout_ns;
        if let Some(t) = self.vc_timer.take() {
            ctx.cancel_timer(t);
        }
        self.log.reset_for_view();
        // Proposals from the old view are void; clients or backups will
        // resubmit anything that did not survive into the new view.
        self.queued.clear();
        self.pending_batch.clear();
        self.pending_batch_len = 0;
        // Absorb batch bodies shipped with the new view.
        let mut shipped: BTreeMap<SeqNum, Vec<BatchEntry>> = batches.into_iter().collect();
        // If the group's stable point is ahead of us, transfer state.
        if plan.min_s > self.checkpoints.stable_seq() {
            if plan.min_s > self.last_executed {
                self.start_state_transfer(ctx, plan.min_s, plan.min_s_digest);
            } else if self.checkpoints.own(plan.min_s).is_some() {
                let digest = self.checkpoints.own(plan.min_s).expect("checked").digest;
                self.checkpoints.make_stable(plan.min_s, digest);
            }
            if plan.min_s > self.log.low() {
                self.log.collect_garbage(plan.min_s);
            }
        }
        let is_primary = self.cfg.quorums.primary(view) == self.id;
        self.next_seq = plan.max_s.max(self.log.low());
        for &(seq, d) in &plan.pre_prepares {
            if !self.log.in_window(seq) {
                continue;
            }
            {
                let slot = self.log.slot_mut(seq);
                slot.view = view;
                slot.digest = Some(d);
                if d == NULL_DIGEST {
                    slot.is_null = true;
                    slot.requests = Some(Vec::new());
                    slot.raw_entries = Some(Vec::new());
                } else if slot.requests.is_none() {
                    if let Some(entries) = shipped.remove(&seq) {
                        if batch_digest(&entries) == d {
                            let reqs: Vec<Request> = entries
                                .iter()
                                .filter_map(|e| match e {
                                    BatchEntry::Full(r) => Some(r.clone()),
                                    BatchEntry::Ref { .. } => None,
                                })
                                .collect();
                            if reqs.len() == entries.len() {
                                slot.raw_entries = Some(entries);
                                slot.requests = Some(reqs);
                            }
                        }
                    }
                }
            }
            // Everyone (including the new primary, whose pre-prepare is
            // implicit) records its own prepare; backups multicast theirs.
            if !is_primary {
                let piggy = self.take_piggy(ctx);
                let prep = Prepare {
                    view,
                    seq,
                    batch_digest: d,
                    replica: self.id,
                    piggy_commits: piggy,
                };
                {
                    let me = self.id;
                    let slot = self.log.slot_mut(seq);
                    slot.prepares.insert(me, d);
                    slot.prepare_sent = true;
                }
                self.multicast(ctx, Msg::Prepare(prep));
            }
            // Request any missing bodies.
            let need_fetch = {
                let slot = self.log.slot(seq).expect("just created");
                slot.requests.is_none()
            };
            if need_fetch {
                let primary = self.cfg.quorums.primary(view);
                let target = if is_primary {
                    (self.id + 1) % self.cfg.n()
                } else {
                    primary
                };
                self.send_to(
                    ctx,
                    target,
                    Msg::FetchBatch(FetchBatch {
                        seq,
                        batch_digest: d,
                    }),
                );
            }
        }
        // Lease state is view-scoped: epochs restart, old grants and
        // leases are void. A new primary additionally waits out twice the
        // lease duration before ordering — every lease the previous
        // primary granted expires at its holder within grant-time +
        // duration + one delay, and any grant sent before the install
        // was sent more than one delay ago, so `2 × duration` measured
        // from here covers them all. (Grants the deposed primary keeps
        // sending *after* our install die within one round trip: holders
        // in the new view answer them with the NEW-VIEW proof.)
        self.drop_lease_state();
        self.lease_epoch = 0;
        self.lease_epoch_seen = 0;
        self.lease_evidence_ns.clear();
        if is_primary && self.cfg.read_leases {
            self.lease_order_gate_ns = ctx.now().nanos() + 2 * self.cfg.read_lease_ns;
        }
        ctx.metrics().incr("replica.views_installed");
        ctx.count(Counter::ViewsInstalled);
        ctx.trace(
            SpanEdge::Close,
            TracePhase::ViewChange,
            TraceMeta {
                view,
                ..TraceMeta::default()
            },
        );
        // Forward pending requests so the new primary learns about them.
        if !is_primary {
            let primary = self.cfg.quorums.primary(view);
            let pending: Vec<Request> = self
                .pending_requests
                .iter()
                .filter_map(|(c, ts)| {
                    self.request_store
                        .values()
                        .find(|r| r.client == *c && r.timestamp == *ts)
                        .cloned()
                })
                .collect();
            for req in pending {
                let packet = Packet::unauthenticated(Msg::Request(req));
                let wire = packet.wire_bytes();
                ctx.charge_kind(CostKind::Net, self.cfg.cost.send(wire));
                ctx.count_sent(packet.body.tag());
                ctx.send(primary, packet, wire);
            }
            if !self.pending_requests.is_empty() {
                self.ensure_vc_timer(ctx);
            }
        } else {
            // Unexecuted pending requests may need re-proposing.
            let pending: Vec<Request> = self
                .pending_requests
                .iter()
                .filter_map(|(c, ts)| {
                    self.request_store
                        .values()
                        .find(|r| r.client == *c && r.timestamp == *ts)
                        .cloned()
                })
                .collect();
            for req in pending {
                if self.queued.insert((req.client, req.timestamp)) {
                    self.enqueue_pending(req);
                }
            }
        }
        self.check_all_prepared(ctx);
    }

    fn check_all_prepared(&mut self, ctx: &mut Context<'_, Packet>) {
        let seqs: Vec<SeqNum> = self.log.iter().map(|(s, _)| s).collect();
        for seq in seqs {
            self.check_prepared(ctx, seq);
        }
        self.try_execute(ctx);
        self.try_propose(ctx);
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Announces a fresh inbound-key epoch (NEW-KEY). MACs under the
    /// previous epoch stay valid for one grace epoch, so in-flight traffic
    /// survives the boundary.
    fn refresh_keys(&mut self, ctx: &mut Context<'_, Packet>) {
        let epoch = self.keychain.refresh();
        ctx.metrics().incr("replica.key_refreshes");
        // Paper-era cost: the real NEW-KEY encrypts one session key per
        // principal under RSA and signs the message.
        ctx.charge_kind(
            CostKind::Rsa,
            self.cfg.cost.rsa_private_ns + self.cfg.cost.rsa_public_ns * (self.cfg.n() as u64 - 1),
        );
        let nk = NewKey {
            replica: self.id,
            epoch,
        };
        self.multicast(ctx, Msg::NewKey(nk));
    }

    fn handle_new_key(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, nk: NewKey) {
        if nk.replica != from || from >= self.cfg.n() {
            return;
        }
        // Verify + decrypt cost of the real NEW-KEY message.
        ctx.charge_kind(
            CostKind::Rsa,
            self.cfg.cost.rsa_public_ns + self.cfg.cost.rsa_private_ns,
        );
        self.keychain.set_peer_epoch(from, nk.epoch);
    }

    // ------------------------------------------------------------------
    // Proactive recovery (Section 2: "BFT can recover replicas
    // proactively ... even if all replicas fail provided less than 1/3
    // become faulty within a window of vulnerability")
    // ------------------------------------------------------------------

    /// Watchdog fire: start a recovery, unless one is already running or
    /// another replica holds the single in-recovery slot (its lease).
    /// Deferral re-arms the timer for just past the blocking lease's
    /// expiry, so staggered recoveries never overlap — the same ≤f budget
    /// discipline the chaos engine enforces for injected faults.
    fn on_recovery_timer(&mut self, ctx: &mut Context<'_, Packet>) {
        let interval = self.cfg.proactive_recovery_interval_ns;
        if self.recovery.in_progress() {
            // A stalled recovery keeps its slot; try again next period.
            ctx.set_timer(interval, TIMER_RECOVERY);
            return;
        }
        let now = ctx.now().nanos();
        if let Some(until) = self.recovery.lease_blocking(self.id, now) {
            ctx.metrics().incr("replica.recovery_deferred");
            ctx.set_timer(until.saturating_sub(now) + dur::millis(1), TIMER_RECOVERY);
            return;
        }
        self.begin_recovery(ctx);
        ctx.set_timer(interval, TIMER_RECOVERY);
    }

    /// First phase of a recovery "reboot": rotate the MAC key epoch (a
    /// stolen session key dies here), drop tentative execution, and ask
    /// the group to attest its stable checkpoint root. Nothing local is
    /// trusted until a witness quorum (`f+1`) agrees on that root.
    fn begin_recovery(&mut self, ctx: &mut Context<'_, Packet>) {
        ctx.metrics().incr("replica.proactive_recoveries");
        ctx.trace(
            SpanEdge::Open,
            TracePhase::Recovery,
            TraceMeta {
                view: self.view,
                seq: self.checkpoints.stable_seq(),
                ..TraceMeta::default()
            },
        );
        self.refresh_keys(ctx);
        self.rollback_tentative();
        // A rebooting holder must not serve reads: its state is suspect
        // until the audit passes, and it refuses new grants meanwhile.
        // The primary's own outstanding grant is deliberately kept — the
        // promise made to holders outlives the reboot within the view.
        self.held_lease = None;
        self.waiting_lease_ro.clear();
        self.recovery.begin(ctx.now().nanos());
        let rc = Recover {
            replica: self.id,
            epoch: self.keychain.epoch(),
            done: false,
        };
        self.multicast(ctx, Msg::Recover(rc));
    }

    /// A peer announced the start (`done == false`) or end (`done ==
    /// true`) of its recovery. On start we grant it the in-recovery
    /// lease, adopt its fresh key epoch, and attest our stable checkpoint
    /// root point-to-point; on end we release the lease so the next
    /// staggered watchdog can fire.
    fn handle_recover(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, rc: Recover) {
        if rc.replica != from || from >= self.cfg.n() || from == self.id {
            return;
        }
        // No signature of its own: the fresh epoch was announced by the
        // signed NEW-KEY the recovering replica multicast an instant
        // earlier (already charged in `handle_new_key`); RECOVER just
        // repeats it so the race between the two messages is harmless,
        // and is MAC-authenticated under the fresh epoch like any packet.
        self.keychain.set_peer_epoch(from, rc.epoch);
        if rc.done {
            self.recovery.release_lease(from);
            return;
        }
        let now = ctx.now().nanos();
        self.recovery
            .grant_lease(from, now + self.cfg.recovery_lease_ns);
        ctx.metrics().incr("replica.recover_leases_granted");
        let (seq, state_digest) = self.checkpoints.stable_proof();
        let ra = RecoverAttest {
            seq,
            state_digest,
            replica: self.id,
        };
        self.send_to(ctx, from, Msg::RecoverAttest(ra));
    }

    /// An attestation for our in-flight recovery. Once `f+1` peers vouch
    /// for the same (seq, root) — at least one of them honest — that root
    /// is trustworthy and the state audit can begin against it.
    fn handle_recover_attest(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        ra: RecoverAttest,
    ) {
        if ra.replica != from || from >= self.cfg.n() || from == self.id {
            return;
        }
        self.recovery.note_vote(from, ra.seq, ra.state_digest);
        if let Some((seq, digest)) = self.recovery.attested(&self.cfg.quorums) {
            self.complete_attested_recovery(ctx, seq, digest);
        }
    }

    /// A witness quorum agreed on a stable checkpoint root: discard every
    /// piece of protocol state above it (all of it is suspect) and audit
    /// our service state against the attested root. If our own copy of
    /// that checkpoint carries the attested root, restoring it *is* the
    /// audit — `restore_own_checkpoint` verifies every partition against
    /// the leaves before applying it. Otherwise we run the partial
    /// state-transfer path, whose STATE-META diff recomputes each live
    /// partition digest and fetches only the mismatches.
    fn complete_attested_recovery(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        seq: SeqNum,
        digest: Digest,
    ) {
        // Our recorded stable certificate required 2f+1 claims (≥ f+1
        // honest), so if it is newer than what the attestation quorum
        // agreed on, prefer it — regressing the log window would only add
        // churn for the same guarantee.
        let (seq, digest) = {
            let own = self.checkpoints.stable_proof();
            if own.0 > seq {
                own
            } else {
                (seq, digest)
            }
        };
        // The "reboot": restart the window at the attested checkpoint but
        // keep every slot above it that accepted a pre-prepare, with its
        // certificates. Recovery must not forget certificate state — in
        // either direction. A batch *we* executed with a commit
        // certificate is client-visible finality; dropping it and
        // re-fetching "eventually" loses the race against a concurrent
        // view change (sequential recoveries can erase every honest copy
        // of an un-checkpointed commit, and the new primary then legally
        // re-orders those sequence numbers). And a batch we merely
        // *prepared* may be the certificate protecting someone ELSE's
        // commit: PBFT's commit safety counts on every honest preparer
        // reporting its prepared certificate in the next view change —
        // recoveries that drop prepared-but-uncommitted slots let a view
        // change quorum legally re-order a sequence number a partitioned
        // peer already finalized. Both were found as agreement violations
        // by the lease chaos family, whose read-mostly traffic leaves
        // commits un-checkpointed for long stretches. Retained batch
        // bodies are digest-verified (corrupt bodies are stripped and
        // re-fetched); the finalized suffix is replayed onto the audited
        // checkpoint state below.
        self.rollback_tentative();
        self.log.reset_keep_certs(seq);
        self.pending_batch.clear();
        self.pending_batch_len = 0;
        self.queued.clear();
        // `pending_requests` survives the reboot: it holds bare client
        // identities (no protocol state to distrust), and it is what the
        // view-change timer checks at expiry. Clearing it every recovery
        // would leave the timer with an empty set whenever the client's
        // retransmission backoff outpaces the recovery interval, silently
        // vetoing every view change. Execution prunes it as usual.
        self.piggy_queue.clear();
        if let Some(t) = self.piggy_timer.take() {
            ctx.cancel_timer(t);
        }
        // Deliberately NOT touched: the view-change timer, `in_view_change`
        // and `pending_view`. The timer measures how long the oldest
        // outstanding client work has been stuck, and an in-flight view
        // change is the cluster's joint escape hatch from a dead primary;
        // recovery churn must not silence the one or abort the other.
        // With a short recovery interval, resetting them here would
        // restart the countdown (or cancel the round) on every rejoin,
        // and a view whose new primary is crashed could never be skipped.
        if !self.in_view_change {
            // Rejoin with a fresh view-change timeout: pre-recovery
            // doubling reflected pre-recovery suspicion. Mid-view-change
            // the doubled value stays — it is what paces the next round.
            self.vc_timeout_ns = self.cfg.view_change_timeout_ns;
        }
        self.waiting_ro.clear();
        // Any lease accepted before the reboot covered pre-reboot state;
        // the audit may replace that state wholesale, so the lease (and
        // reads queued against it) must not survive. A fresh grant —
        // refused while `in_progress()` — re-establishes serving.
        self.held_lease = None;
        self.waiting_lease_ro.clear();
        self.fetching = None;
        self.backfill.clear();
        self.tentative_ops = 0;
        self.tentative_cache_undo.clear();
        // Do NOT reset next_seq: a recovering primary must never reuse a
        // sequence number it may already have assigned in this view.
        self.recovery.start_audit(seq);
        let own_matches = self
            .checkpoints
            .own(seq)
            .is_some_and(|own| CheckpointTracker::root_of(&own.leaves) == digest);
        if own_matches && self.restore_own_checkpoint(seq) {
            // Every partition verified against the attested root locally.
            // Execution restarts from the restored checkpoint; the
            // retained finalized suffix re-executes below (stale markers
            // would wedge the loop), rebuilding the exact pre-recovery
            // prefix on provably clean state.
            self.log.clear_executed_above(seq);
            self.last_executed = seq;
            self.last_final = seq;
            self.next_seq = self.next_seq.max(seq);
            self.checkpoints.mark_announced(seq);
            self.checkpoints.make_stable(seq, digest);
            self.service.release_checkpoints_below(seq);
            self.complete_recovery(ctx, seq, digest);
            self.try_execute(ctx);
        } else {
            // Local copy is missing, stale, or corrupt: audit against the
            // group. Only mismatched partitions cross the network.
            ctx.metrics().incr("replica.recovery_audit_refetch");
            let target = (self.id + 1) % self.cfg.n();
            self.fetching = Some(StateFetch::new(seq, digest, target));
            ctx.trace(
                SpanEdge::Open,
                TracePhase::StateTransfer,
                TraceMeta {
                    view: self.view,
                    seq,
                    ..TraceMeta::default()
                },
            );
            self.send_to(ctx, target, Msg::FetchState(FetchState { seq }));
        }
    }

    /// The audit passed: our state provably matches the attested root.
    /// Announce completion so peers release the in-recovery lease, and
    /// gossip status so they backfill what committed while we recovered.
    fn complete_recovery(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum, digest: Digest) {
        let now = ctx.now().nanos();
        let heal_ns = now.saturating_sub(self.recovery.since_ns().unwrap_or(now));
        ctx.metrics().add("replica.recovery_heal_ns", heal_ns);
        ctx.metrics().incr("replica.recoveries_completed");
        ctx.count(Counter::Recoveries);
        self.recovery.finish();
        self.audit.note_recovery(seq, digest, ctx.now().nanos());
        ctx.trace(
            SpanEdge::Close,
            TracePhase::Recovery,
            TraceMeta {
                view: self.view,
                seq,
                ..TraceMeta::default()
            },
        );
        let rc = Recover {
            replica: self.id,
            epoch: self.keychain.epoch(),
            done: true,
        };
        self.multicast(ctx, Msg::Recover(rc));
        let status = Status {
            view: self.view,
            last_stable: self.checkpoints.stable_seq(),
            last_executed: self.last_executed,
        };
        self.multicast(ctx, Msg::Status(status));
    }

    fn on_resend_timer(&mut self, ctx: &mut Context<'_, Packet>) {
        // A recovery stuck waiting for attestations (lost announcement or
        // a partitioned quorum) would stall forever without this: peers
        // attest once per RECOVER received, so re-announce.
        if matches!(
            self.recovery.stage(),
            RecoveryStage::AwaitingAttestation { .. }
        ) {
            let rc = Recover {
                replica: self.id,
                epoch: self.keychain.epoch(),
                done: false,
            };
            self.multicast(ctx, Msg::Recover(rc));
        }
        if self.in_view_change {
            return;
        }
        // Retransmit protocol messages for stalled slots.
        let q = self.cfg.quorums;
        let stalled: Vec<(SeqNum, Digest, bool, bool)> = self
            .log
            .iter()
            .filter(|(_, slot)| slot.digest.is_some() && !slot.committed(&q))
            .take(32)
            .map(|(seq, slot)| {
                (
                    seq,
                    slot.digest.expect("filtered"),
                    slot.prepare_sent,
                    slot.commit_sent,
                )
            })
            .collect();
        for (seq, d, prepare_sent, commit_sent) in stalled {
            if self.is_primary() {
                if let Some(slot) = self.log.slot(seq) {
                    if let Some(entries) = slot.raw_entries.clone() {
                        let pp = PrePrepare {
                            view: self.view,
                            seq,
                            entries,
                            batch_digest: d,
                            piggy_commits: Vec::new(),
                        };
                        self.multicast(ctx, Msg::PrePrepare(pp));
                    }
                }
            } else if prepare_sent {
                let prep = Prepare {
                    view: self.view,
                    seq,
                    batch_digest: d,
                    replica: self.id,
                    piggy_commits: Vec::new(),
                };
                self.multicast(ctx, Msg::Prepare(prep));
            }
            if commit_sent {
                let c = Commit {
                    view: self.view,
                    seq,
                    batch_digest: d,
                    replica: self.id,
                };
                self.multicast(ctx, Msg::Commit(c));
            }
        }
        // Recover request bodies that were lost on the wire: without them
        // prepared batches can commit but never execute. Only the first
        // blocked slot matters (execution is sequential), and flooding
        // fetches would amplify the very overload that lost the bodies.
        let blocked: Option<SeqNum> = self
            .log
            .iter()
            .find(|&(seq, slot)| {
                slot.digest.is_some() && !slot.executable() && seq > self.last_executed
            })
            .map(|(seq, _)| seq);
        if let Some(seq) = blocked {
            self.recover_bodies(ctx, seq);
        }
        // Re-announce our stable checkpoint so replicas that were cut off
        // discover they are behind even when the system is otherwise idle
        // (this stands in for BFT's periodic status messages).
        let stable = self.checkpoints.stable_seq();
        if stable > 0 {
            let cp = Checkpoint {
                seq: stable,
                state_digest: self.checkpoints.stable_digest(),
                replica: self.id,
            };
            self.multicast(ctx, Msg::Checkpoint(cp));
        }
        // Gossip status so peers can backfill what we are missing (and we
        // can backfill them).
        let status = Status {
            view: self.view,
            last_stable: self.checkpoints.stable_seq(),
            last_executed: self.last_executed,
        };
        self.multicast(ctx, Msg::Status(status));
        // Keep state transfer alive: rotate the target and re-send the
        // current phase's request.
        if self.fetching.is_some() {
            self.retry_state_transfer(ctx);
        }
    }

    /// One-shot fast-path fallback timer fired for `seq`. Stale firings
    /// (the slot fast-committed, fell back already, or the view changed
    /// and cleared its fast state) are no-ops.
    fn on_fastpath_timer(&mut self, ctx: &mut Context<'_, Packet>, seq: SeqNum) {
        if self.in_view_change || !self.log.in_window(seq) {
            return;
        }
        let waiting = self
            .log
            .slot(seq)
            .is_some_and(|slot| slot.fast_wait && !slot.fast_committed && !slot.commit_sent);
        if waiting {
            ctx.metrics().incr("replica.fast_timeouts");
            self.fall_back_to_classic(ctx, seq);
        }
    }

    fn flush_piggy(&mut self, ctx: &mut Context<'_, Packet>) {
        self.piggy_timer = None;
        let queue = std::mem::take(&mut self.piggy_queue);
        for (seq, d) in queue {
            let c = Commit {
                view: self.view,
                seq,
                batch_digest: d,
                replica: self.id,
            };
            self.multicast(ctx, Msg::Commit(c));
        }
    }
}

fn tamper(result: &mut Vec<u8>) {
    if result.is_empty() {
        result.push(0xde);
    } else {
        result[0] ^= 0xff;
    }
}

impl<S: Service> Node<Packet> for Replica<S> {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        assert_eq!(
            ctx.id(),
            self.id,
            "replica must be registered at node id == replica id"
        );
        ctx.set_timer(self.cfg.resend_interval_ns, TIMER_RESEND);
        if self.cfg.key_refresh_interval_ns > 0 {
            ctx.set_timer(self.cfg.key_refresh_interval_ns, TIMER_KEY_REFRESH);
        }
        if self.cfg.proactive_recovery_interval_ns > 0 {
            // Stagger recoveries so at most one replica reboots at a time
            // (the paper's proactive recovery does the same).
            let first = self.cfg.proactive_recovery_interval_ns / self.cfg.n() as u64
                * (self.id as u64 + 1);
            ctx.set_timer(first, TIMER_RECOVERY);
        }
        if self.cfg.read_leases {
            // The lease tick runs on every replica: the primary grants
            // and renews from it, holders use it for expiry hygiene.
            ctx.set_timer(self.cfg.read_lease_ns / 2, TIMER_LEASE);
            // Seed liveness evidence as of boot: all replicas start
            // connected, so the primary may grant immediately instead of
            // parking the first reads until status gossip (which rides
            // the much slower resend timer) accumulates. A primary
            // partitioned from birth still stops granting within one
            // evidence window, exactly as in steady state.
            if self.is_primary() {
                let now = ctx.now().nanos();
                for r in 0..self.cfg.n() {
                    if r != self.id {
                        self.lease_evidence_ns.insert(r, now);
                    }
                }
                self.issue_lease_grant(ctx);
            }
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        packet: Packet,
        wire: usize,
    ) {
        if self.behavior == Behavior::Crashed {
            return;
        }
        ctx.charge_kind(CostKind::Net, self.cfg.cost.recv(wire));
        ctx.metrics().incr(packet.body.metric_name());
        ctx.count_received(packet.body.tag());
        if !self.verify_packet(ctx, from, &packet) {
            ctx.metrics().incr("replica.bad_packet_auth");
            return;
        }
        let had_store = self.request_store.len();
        match packet.body {
            Msg::Request(req) => {
                self.handle_request(ctx, req);
                if self.request_store.len() != had_store {
                    self.resolve_pending_batches(ctx);
                }
            }
            Msg::PrePrepare(pp) => self.handle_pre_prepare(ctx, from, pp),
            Msg::Prepare(p) => self.handle_prepare(ctx, from, p),
            Msg::Commit(c) => self.handle_commit(ctx, from, c),
            Msg::Checkpoint(cp) => self.handle_checkpoint(ctx, cp),
            Msg::ViewChange(vc) => self.handle_view_change(ctx, vc),
            Msg::NewView(nv) => self.handle_new_view(ctx, from, nv),
            Msg::FetchState(fs) => self.handle_fetch_state(ctx, from, fs),
            Msg::StateMeta(sm) => self.handle_state_meta(ctx, sm),
            Msg::FetchParts(fp) => self.handle_fetch_parts(ctx, from, fp),
            Msg::PartData(pd) => self.handle_part_data(ctx, pd),
            Msg::FetchBatch(fb) => self.handle_fetch_batch(ctx, from, fb),
            Msg::BatchData(bd) => self.handle_batch_data(ctx, bd),
            Msg::FetchRequests(fr) => self.handle_fetch_requests(ctx, from, fr),
            Msg::RequestData(rd) => self.handle_request_data(ctx, rd),
            Msg::Status(st) => self.handle_status(ctx, from, st),
            Msg::CommittedBatch(cb) => self.handle_committed_batch(ctx, from, cb),
            Msg::NewKey(nk) => self.handle_new_key(ctx, from, nk),
            Msg::Recover(rc) => self.handle_recover(ctx, from, rc),
            Msg::RecoverAttest(ra) => self.handle_recover_attest(ctx, from, ra),
            Msg::Lease(l) => self.handle_lease(ctx, from, l),
            Msg::LeaseRenew(lr) => self.handle_lease_renew(ctx, from, lr),
            Msg::LeaseRevoke(rv) => self.handle_lease_revoke(ctx, from, rv),
            Msg::Busy(_) => { /* replica-to-client pushback; replicas ignore it */ }
            Msg::Reply(_) => { /* replicas do not consume replies */ }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        if self.behavior == Behavior::Crashed {
            // A crash may be followed by a chaos-plan restart, so the
            // recurring timers must stay armed (doing no work), and
            // one-shot timer handles must be cleared — the fired timer's
            // id is consumed, and a stale `Some` would block re-arming
            // after the restart.
            match token {
                TIMER_RESEND => {
                    ctx.set_timer(self.cfg.resend_interval_ns, TIMER_RESEND);
                }
                TIMER_KEY_REFRESH => {
                    ctx.set_timer(self.cfg.key_refresh_interval_ns, TIMER_KEY_REFRESH);
                }
                TIMER_RECOVERY => {
                    ctx.set_timer(self.cfg.proactive_recovery_interval_ns, TIMER_RECOVERY);
                }
                TIMER_LEASE => {
                    ctx.set_timer(self.cfg.read_lease_ns / 2, TIMER_LEASE);
                }
                TIMER_VIEW_CHANGE => {
                    self.vc_timer = None;
                }
                TIMER_PIGGY => {
                    self.piggy_timer = None;
                    self.piggy_queue.clear();
                }
                _ => {}
            }
            return;
        }
        match token {
            TIMER_RESEND => {
                self.on_resend_timer(ctx);
                ctx.set_timer(self.cfg.resend_interval_ns, TIMER_RESEND);
            }
            TIMER_VIEW_CHANGE => {
                self.vc_timer = None;
                if self.in_view_change {
                    // The new primary never produced a valid NEW-VIEW.
                    let next = self.pending_view + 1;
                    self.start_view_change(ctx, next);
                } else if !self.pending_requests.is_empty() {
                    let next = self.view + 1;
                    self.start_view_change(ctx, next);
                }
            }
            TIMER_PIGGY => self.flush_piggy(ctx),
            TIMER_KEY_REFRESH => {
                self.refresh_keys(ctx);
                ctx.set_timer(self.cfg.key_refresh_interval_ns, TIMER_KEY_REFRESH);
            }
            TIMER_RECOVERY => self.on_recovery_timer(ctx),
            TIMER_LEASE => {
                self.on_lease_timer(ctx);
                ctx.set_timer(self.cfg.read_lease_ns / 2, TIMER_LEASE);
            }
            t if t >= TIMER_FASTPATH_BASE => {
                self.on_fastpath_timer(ctx, t - TIMER_FASTPATH_BASE);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<S: Service> std::fmt::Debug for Replica<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("last_executed", &self.last_executed)
            .field("last_final", &self.last_final)
            .field("stable", &self.checkpoints.stable_seq())
            .field("in_view_change", &self.in_view_change)
            .field("next_seq", &self.next_seq)
            .field("pending_batch", &self.pending_batch_len)
            .field("queued", &self.queued.len())
            .field("pending_reqs", &self.pending_requests.len())
            .finish()
    }
}
