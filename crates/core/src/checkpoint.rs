//! Checkpoint management: periodic state digests, stability proofs, and
//! garbage-collection triggers.
//!
//! Every `K` sequence numbers a replica digests its state and, once the
//! checkpoint's batch commits, multicasts a CHECKPOINT message. When it
//! holds `2f+1` matching claims for a sequence number, that checkpoint is
//! *stable*: the log below it can be discarded and the low water mark
//! advances.
//!
//! # Incremental hierarchical digests
//!
//! The checkpoint digest is the root of a Merkle tree whose leaves are
//! the service's partition digests plus one leaf for the reply cache
//! (Section 4's hierarchical state partitions). [`CheckpointTracker`]
//! keeps that tree alive between checkpoints: producing the next
//! checkpoint digest only re-hashes the partitions the service reports
//! dirty and folds them up the tree — `O(dirty · log P)` instead of
//! `O(state)`.
//!
//! Checkpoints are also *lazy*: a local checkpoint records the leaf
//! digests and the reply cache, but partition bytes are serialized only
//! if the service cannot retain a copy-on-write version itself
//! ([`crate::service::Service::retain_checkpoint`] returns `false`).
//! Nothing is encoded until a lagging peer actually fetches state.

use crate::messages::Checkpoint;
use crate::service::Service;
use crate::types::{Quorums, ReplicaId, SeqNum};
use bft_crypto::md5::Digest;
use bft_crypto::merkle::MerkleTree;
use std::collections::BTreeMap;

/// A checkpoint this replica produced locally.
#[derive(Debug, Clone)]
pub struct OwnCheckpoint {
    /// Checkpoint digest: the Merkle root over `leaves`.
    pub digest: Digest,
    /// Partition digests (`partition_count()` service leaves followed by
    /// the reply-cache leaf), the raw values under [`Self::digest`].
    pub leaves: Vec<Digest>,
    /// Encoded reply cache at this checkpoint (always materialized — it
    /// is small and changes with every reply).
    pub cache_bytes: Vec<u8>,
    /// Eagerly serialized partition bytes, kept only when the service
    /// could not retain a copy-on-write version (`None` means partition
    /// bytes are served lazily via `Service::retained_partition`).
    pub parts: Option<Vec<Vec<u8>>>,
    /// Whether the CHECKPOINT message has been multicast yet (it is held
    /// until the checkpoint's batch commits).
    pub announced: bool,
}

impl OwnCheckpoint {
    /// Builds a checkpoint from its leaf digests; the checkpoint digest
    /// is the Merkle root they commit to. `parts`, when present, are the
    /// eagerly serialized partition bytes (one entry per *service*
    /// partition, i.e. `leaves.len() - 1`).
    pub fn new(
        leaves: Vec<Digest>,
        cache_bytes: Vec<u8>,
        parts: Option<Vec<Vec<u8>>>,
    ) -> OwnCheckpoint {
        OwnCheckpoint {
            digest: MerkleTree::root_of(&leaves),
            leaves,
            cache_bytes,
            parts,
            announced: false,
        }
    }

    /// The digests of the service partitions (every leaf but the final
    /// reply-cache leaf).
    pub fn service_leaves(&self) -> &[Digest] {
        &self.leaves[..self.leaves.len().saturating_sub(1)]
    }
}

/// What a [`CheckpointTracker::refresh`] actually re-hashed, so the
/// simulation can charge digest CPU proportional to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshStats {
    /// Service partitions that were re-digested (excludes the cache
    /// leaf).
    pub dirty_parts: u32,
    /// Total encoded bytes re-hashed (dirty partitions + reply cache).
    pub dirty_bytes: u64,
    /// Internal tree nodes recomputed while folding leaves to the root.
    pub tree_ops: u32,
    /// The resulting checkpoint digest (Merkle root).
    pub root: Digest,
}

/// A live Merkle tree over the service's partition digests plus the
/// reply-cache leaf. Kept between checkpoints so each checkpoint only
/// pays for the partitions dirtied since the previous one.
#[derive(Debug, Clone)]
pub struct CheckpointTracker {
    tree: MerkleTree,
    parts: u32,
}

impl CheckpointTracker {
    /// Builds the tree from scratch, digesting every partition. Used at
    /// construction and after wholesale state replacement.
    pub fn new<S: Service + ?Sized>(svc: &S, cache_bytes: &[u8]) -> CheckpointTracker {
        let parts = svc.partition_count();
        let mut leaves: Vec<Digest> = (0..parts).map(|p| svc.partition_digest(p)).collect();
        leaves.push(bft_crypto::digest(cache_bytes));
        CheckpointTracker {
            tree: MerkleTree::new(leaves),
            parts,
        }
    }

    /// Drains the service's dirty set, re-digests exactly those
    /// partitions plus the reply-cache leaf, and folds the changes up
    /// the tree. Returns what was re-hashed and the new root.
    pub fn refresh<S: Service + ?Sized>(
        &mut self,
        svc: &mut S,
        cache_bytes: &[u8],
    ) -> RefreshStats {
        let dirty = svc.take_dirty_partitions();
        let mut dirty_bytes = 0u64;
        let mut tree_ops = 0u32;
        for &p in &dirty {
            dirty_bytes += svc.partition_size(p) as u64;
            tree_ops += self.tree.update(p as usize, svc.partition_digest(p)) as u32;
        }
        // The reply cache changes with every executed request, so its
        // leaf is unconditionally refreshed.
        dirty_bytes += cache_bytes.len() as u64;
        tree_ops +=
            self.tree
                .update(self.parts as usize, bft_crypto::digest(cache_bytes)) as u32;
        RefreshStats {
            dirty_parts: dirty.len() as u32,
            dirty_bytes,
            tree_ops,
            root: self.tree.root(),
        }
    }

    /// The current checkpoint digest (Merkle root).
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// The raw leaf digests: `partition_count()` service partitions
    /// followed by the reply-cache leaf.
    pub fn leaves(&self) -> &[Digest] {
        self.tree.leaves()
    }

    /// Number of *service* partitions (the tree has one more leaf for
    /// the reply cache).
    pub fn partition_count(&self) -> u32 {
        self.parts
    }

    /// Recomputes the checkpoint digest a set of leaves commits to.
    /// Fetchers use this to validate an advertised leaf vector against
    /// the quorum-agreed checkpoint digest.
    pub fn root_of(leaves: &[Digest]) -> Digest {
        MerkleTree::root_of(leaves)
    }
}

/// A newly stable checkpoint, returned by [`CheckpointSet::add_claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewlyStable {
    /// The stable sequence number.
    pub seq: SeqNum,
    /// The agreed state digest.
    pub digest: Digest,
}

/// All checkpoint state for one replica.
#[derive(Debug, Clone)]
pub struct CheckpointSet {
    quorums: Quorums,
    /// Locally produced checkpoints, by sequence number.
    own: BTreeMap<SeqNum, OwnCheckpoint>,
    /// Claims received (including our own announcements).
    claims: BTreeMap<SeqNum, BTreeMap<ReplicaId, Digest>>,
    stable_seq: SeqNum,
    stable_digest: Digest,
}

impl CheckpointSet {
    /// Creates the checkpoint state with the genesis checkpoint (sequence
    /// 0) already stable.
    pub fn new(quorums: Quorums, mut genesis: OwnCheckpoint) -> CheckpointSet {
        genesis.announced = true;
        let stable_digest = genesis.digest;
        let mut own = BTreeMap::new();
        own.insert(0, genesis);
        CheckpointSet {
            quorums,
            own,
            claims: BTreeMap::new(),
            stable_seq: 0,
            stable_digest,
        }
    }

    /// The last stable checkpoint sequence number.
    pub fn stable_seq(&self) -> SeqNum {
        self.stable_seq
    }

    /// The last stable checkpoint digest.
    pub fn stable_digest(&self) -> Digest {
        self.stable_digest
    }

    /// The (seq, digest) pair a peer attests to a recovering replica —
    /// its stable checkpoint, the newest state backed by a quorum
    /// certificate rather than local trust.
    pub fn stable_proof(&self) -> (SeqNum, Digest) {
        (self.stable_seq, self.stable_digest)
    }

    /// Records a locally produced checkpoint (not yet announced).
    pub fn note_own(&mut self, seq: SeqNum, checkpoint: OwnCheckpoint) {
        self.own.insert(seq, checkpoint);
    }

    /// Returns the local checkpoint at `seq`, if any.
    pub fn own(&self, seq: SeqNum) -> Option<&OwnCheckpoint> {
        self.own.get(&seq)
    }

    /// Marks the local checkpoint at `seq` as announced and returns its
    /// digest, or `None` if there is no local checkpoint there.
    pub fn mark_announced(&mut self, seq: SeqNum) -> Option<Digest> {
        let cp = self.own.get_mut(&seq)?;
        cp.announced = true;
        Some(cp.digest)
    }

    /// Local checkpoints that are not yet announced and are at or below
    /// `committed_seq` (their batches have committed).
    pub fn announceable(&self, committed_seq: SeqNum) -> Vec<(SeqNum, Digest)> {
        self.own
            .iter()
            .filter(|&(&s, cp)| !cp.announced && s <= committed_seq && s > 0)
            .map(|(&s, cp)| (s, cp.digest))
            .collect()
    }

    /// Records a CHECKPOINT claim. Returns the new stable checkpoint if
    /// this claim completed a `2f+1` quorum above the current stable
    /// sequence number.
    pub fn add_claim(&mut self, cp: &Checkpoint) -> Option<NewlyStable> {
        if cp.seq <= self.stable_seq {
            return None;
        }
        let claims = self.claims.entry(cp.seq).or_default();
        claims.insert(cp.replica, cp.state_digest);
        // Count the most common digest at this sequence number. BTreeMap
        // iteration makes the max_by_key tie-break deterministic (the
        // largest digest among equally counted ones wins on every replica).
        let mut counts: BTreeMap<Digest, usize> = BTreeMap::new();
        for &d in claims.values() {
            *counts.entry(d).or_insert(0) += 1;
        }
        let (&digest, &count) = counts.iter().max_by_key(|&(_, &c)| c)?;
        if count >= self.quorums.checkpoint_quorum() {
            Some(NewlyStable {
                seq: cp.seq,
                digest,
            })
        } else {
            None
        }
    }

    /// Installs a stable checkpoint: advances the stable marker and prunes
    /// older checkpoints and claims. Returns `false` if `seq` is not newer
    /// than the current stable checkpoint.
    pub fn make_stable(&mut self, seq: SeqNum, digest: Digest) -> bool {
        if seq <= self.stable_seq {
            return false;
        }
        self.stable_seq = seq;
        self.stable_digest = digest;
        self.own = self.own.split_off(&seq);
        self.claims = self.claims.split_off(&(seq + 1));
        true
    }

    /// Evidence that this replica has fallen behind: a claim quorum exists
    /// for a sequence number greater than `horizon`. Returns the highest
    /// such `(seq, digest)`.
    pub fn quorum_beyond(&self, horizon: SeqNum) -> Option<NewlyStable> {
        for (&seq, claims) in self.claims.iter().rev() {
            if seq <= horizon {
                break;
            }
            let mut counts: BTreeMap<Digest, usize> = BTreeMap::new();
            for &d in claims.values() {
                *counts.entry(d).or_insert(0) += 1;
            }
            if let Some((&digest, &count)) = counts.iter().max_by_key(|&(_, &c)| c) {
                if count >= self.quorums.checkpoint_quorum() {
                    return Some(NewlyStable { seq, digest });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An eagerly materialized one-partition checkpoint whose content is
    /// the single byte `tag`.
    fn own_cp(tag: u8) -> OwnCheckpoint {
        OwnCheckpoint::new(
            vec![bft_crypto::digest(&[tag]), bft_crypto::digest(b"")],
            Vec::new(),
            Some(vec![vec![tag]]),
        )
    }

    fn set() -> CheckpointSet {
        CheckpointSet::new(Quorums::minimal(1), own_cp(7))
    }

    fn claim(seq: SeqNum, replica: ReplicaId, tag: u8) -> Checkpoint {
        Checkpoint {
            seq,
            state_digest: bft_crypto::digest(&[tag]),
            replica,
        }
    }

    #[test]
    fn genesis_is_stable() {
        let s = set();
        assert_eq!(s.stable_seq(), 0);
        assert_eq!(s.stable_digest(), own_cp(7).digest);
        let genesis = s.own(0).expect("genesis retained");
        assert!(genesis.announced, "genesis needs no announcement");
        assert_eq!(genesis.parts.as_deref(), Some([vec![7u8]].as_slice()));
    }

    #[test]
    fn own_checkpoint_digest_is_merkle_root() {
        let cp = own_cp(3);
        assert_eq!(cp.digest, MerkleTree::root_of(&cp.leaves));
        assert_eq!(cp.service_leaves(), &cp.leaves[..1]);
    }

    #[test]
    fn quorum_makes_stable() {
        let mut s = set();
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
        assert!(s.add_claim(&claim(128, 1, 1)).is_none());
        let stable = s.add_claim(&claim(128, 2, 1)).expect("2f+1 claims");
        assert_eq!(stable.seq, 128);
        assert!(s.make_stable(stable.seq, stable.digest));
        assert_eq!(s.stable_seq(), 128);
    }

    #[test]
    fn mismatched_digests_do_not_form_quorum() {
        let mut s = set();
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
        assert!(s.add_claim(&claim(128, 1, 2)).is_none());
        assert!(s.add_claim(&claim(128, 2, 3)).is_none());
        // A fourth claim matching one of them still only makes 2 < 2f+1.
        assert!(s.add_claim(&claim(128, 3, 1)).is_none());
    }

    #[test]
    fn duplicate_claims_count_once() {
        let mut s = set();
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
    }

    #[test]
    fn stale_claims_ignored() {
        let mut s = set();
        for r in 0..3 {
            let res = s.add_claim(&claim(128, r, 1));
            if r == 2 {
                let st = res.expect("stable");
                s.make_stable(st.seq, st.digest);
            }
        }
        assert!(s.add_claim(&claim(100, 3, 9)).is_none(), "below stable");
        assert!(!s.make_stable(100, bft_crypto::digest(b"x")));
    }

    #[test]
    fn own_checkpoints_announceable_only_after_commit() {
        let mut s = set();
        s.note_own(128, own_cp(1));
        s.note_own(256, own_cp(2));
        assert_eq!(s.announceable(128).len(), 1);
        assert_eq!(s.announceable(300).len(), 2);
        s.mark_announced(128).expect("exists");
        assert_eq!(s.announceable(300).len(), 1);
    }

    #[test]
    fn make_stable_prunes_older_own_checkpoints() {
        let mut s = set();
        s.note_own(128, own_cp(1));
        s.note_own(256, own_cp(2));
        s.make_stable(256, own_cp(2).digest);
        assert!(s.own(128).is_none());
        assert!(s.own(256).is_some());
        assert_eq!(s.stable_digest(), own_cp(2).digest);
    }

    #[test]
    fn tracker_incremental_root_matches_full_rebuild() {
        use crate::service::{CounterService, Service};
        let mut svc = CounterService::default();
        svc.execute(1, &CounterService::add_op(4));
        let mut tracker = CheckpointTracker::new(&svc, b"cache0");
        assert_eq!(
            tracker.root(),
            CheckpointTracker::new(&svc, b"cache0").root()
        );
        svc.take_dirty_partitions(); // tracker::new digested everything
        svc.execute(1, &CounterService::add_op(9));
        let stats = tracker.refresh(&mut svc, b"cache1");
        assert_eq!(stats.dirty_parts, 1);
        assert_eq!(stats.root, tracker.root());
        assert_eq!(
            tracker.root(),
            CheckpointTracker::new(&svc, b"cache1").root()
        );
        // A refresh with nothing dirty only re-hashes the cache leaf.
        let stats = tracker.refresh(&mut svc, b"cache1");
        assert_eq!(stats.dirty_parts, 0);
        assert_eq!(stats.dirty_bytes, b"cache1".len() as u64);
    }

    #[test]
    fn tracker_leaves_commit_to_root() {
        let svc = crate::service::CounterService::default();
        let tracker = CheckpointTracker::new(&svc, b"rc");
        assert_eq!(tracker.root(), CheckpointTracker::root_of(tracker.leaves()));
        assert_eq!(
            tracker.leaves().len(),
            tracker.partition_count() as usize + 1,
            "service partitions plus the reply-cache leaf"
        );
    }

    #[test]
    fn quorum_beyond_detects_lag() {
        let mut s = set();
        for r in 0..3 {
            s.add_claim(&claim(512, r, 4));
        }
        let evidence = s.quorum_beyond(128).expect("quorum at 512");
        assert_eq!(evidence.seq, 512);
        assert!(s.quorum_beyond(512).is_none());
    }
}
