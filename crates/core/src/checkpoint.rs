//! Checkpoint management: periodic state digests, stability proofs, and
//! garbage-collection triggers.
//!
//! Every `K` sequence numbers a replica snapshots its state and, once the
//! checkpoint's batch commits, multicasts a CHECKPOINT message. When it
//! holds `2f+1` matching claims for a sequence number, that checkpoint is
//! *stable*: the log below it can be discarded and the low water mark
//! advances. The stable snapshot also serves state transfer.

use crate::messages::Checkpoint;
use crate::types::{Quorums, ReplicaId, SeqNum};
use bft_crypto::md5::Digest;
use std::collections::{BTreeMap, HashMap};

/// A checkpoint this replica produced locally.
#[derive(Debug, Clone)]
pub struct OwnCheckpoint {
    /// State digest at the checkpoint.
    pub digest: Digest,
    /// Serialized state (kept for rollback-free state transfer).
    pub snapshot: Vec<u8>,
    /// Whether the CHECKPOINT message has been multicast yet (it is held
    /// until the checkpoint's batch commits).
    pub announced: bool,
}

/// A newly stable checkpoint, returned by [`CheckpointSet::add_claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewlyStable {
    /// The stable sequence number.
    pub seq: SeqNum,
    /// The agreed state digest.
    pub digest: Digest,
}

/// All checkpoint state for one replica.
#[derive(Debug, Clone)]
pub struct CheckpointSet {
    quorums: Quorums,
    /// Locally produced checkpoints, by sequence number.
    own: BTreeMap<SeqNum, OwnCheckpoint>,
    /// Claims received (including our own announcements).
    claims: BTreeMap<SeqNum, HashMap<ReplicaId, Digest>>,
    stable_seq: SeqNum,
    stable_digest: Digest,
}

impl CheckpointSet {
    /// Creates the checkpoint state with the genesis checkpoint (sequence
    /// 0) already stable at `genesis_digest`.
    pub fn new(
        quorums: Quorums,
        genesis_digest: Digest,
        genesis_snapshot: Vec<u8>,
    ) -> CheckpointSet {
        let mut own = BTreeMap::new();
        own.insert(
            0,
            OwnCheckpoint {
                digest: genesis_digest,
                snapshot: genesis_snapshot,
                announced: true,
            },
        );
        CheckpointSet {
            quorums,
            own,
            claims: BTreeMap::new(),
            stable_seq: 0,
            stable_digest: genesis_digest,
        }
    }

    /// The last stable checkpoint sequence number.
    pub fn stable_seq(&self) -> SeqNum {
        self.stable_seq
    }

    /// The last stable checkpoint digest.
    pub fn stable_digest(&self) -> Digest {
        self.stable_digest
    }

    /// Records a locally produced checkpoint (not yet announced).
    pub fn note_own(&mut self, seq: SeqNum, digest: Digest, snapshot: Vec<u8>) {
        self.own.insert(
            seq,
            OwnCheckpoint {
                digest,
                snapshot,
                announced: false,
            },
        );
    }

    /// Returns the local checkpoint at `seq`, if any.
    pub fn own(&self, seq: SeqNum) -> Option<&OwnCheckpoint> {
        self.own.get(&seq)
    }

    /// Marks the local checkpoint at `seq` as announced and returns its
    /// digest, or `None` if there is no local checkpoint there.
    pub fn mark_announced(&mut self, seq: SeqNum) -> Option<Digest> {
        let cp = self.own.get_mut(&seq)?;
        cp.announced = true;
        Some(cp.digest)
    }

    /// Local checkpoints that are not yet announced and are at or below
    /// `committed_seq` (their batches have committed).
    pub fn announceable(&self, committed_seq: SeqNum) -> Vec<(SeqNum, Digest)> {
        self.own
            .iter()
            .filter(|&(&s, cp)| !cp.announced && s <= committed_seq && s > 0)
            .map(|(&s, cp)| (s, cp.digest))
            .collect()
    }

    /// Records a CHECKPOINT claim. Returns the new stable checkpoint if
    /// this claim completed a `2f+1` quorum above the current stable
    /// sequence number.
    pub fn add_claim(&mut self, cp: &Checkpoint) -> Option<NewlyStable> {
        if cp.seq <= self.stable_seq {
            return None;
        }
        let claims = self.claims.entry(cp.seq).or_default();
        claims.insert(cp.replica, cp.state_digest);
        // Count the most common digest at this sequence number.
        let mut counts: HashMap<Digest, usize> = HashMap::new();
        for &d in claims.values() {
            *counts.entry(d).or_insert(0) += 1;
        }
        let (&digest, &count) = counts.iter().max_by_key(|&(_, &c)| c)?;
        if count >= self.quorums.checkpoint_quorum() {
            Some(NewlyStable {
                seq: cp.seq,
                digest,
            })
        } else {
            None
        }
    }

    /// Installs a stable checkpoint: advances the stable marker and prunes
    /// older checkpoints and claims. Returns `false` if `seq` is not newer
    /// than the current stable checkpoint.
    pub fn make_stable(&mut self, seq: SeqNum, digest: Digest) -> bool {
        if seq <= self.stable_seq {
            return false;
        }
        self.stable_seq = seq;
        self.stable_digest = digest;
        self.own = self.own.split_off(&seq);
        self.claims = self.claims.split_off(&(seq + 1));
        true
    }

    /// The snapshot of the stable checkpoint, if this replica has it
    /// locally (it may not, right after state transfer was skipped).
    pub fn stable_snapshot(&self) -> Option<&[u8]> {
        self.own
            .get(&self.stable_seq)
            .map(|cp| cp.snapshot.as_slice())
    }

    /// Evidence that this replica has fallen behind: a claim quorum exists
    /// for a sequence number greater than `horizon`. Returns the highest
    /// such `(seq, digest)`.
    pub fn quorum_beyond(&self, horizon: SeqNum) -> Option<NewlyStable> {
        for (&seq, claims) in self.claims.iter().rev() {
            if seq <= horizon {
                break;
            }
            let mut counts: HashMap<Digest, usize> = HashMap::new();
            for &d in claims.values() {
                *counts.entry(d).or_insert(0) += 1;
            }
            if let Some((&digest, &count)) = counts.iter().max_by_key(|&(_, &c)| c) {
                if count >= self.quorums.checkpoint_quorum() {
                    return Some(NewlyStable { seq, digest });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> CheckpointSet {
        CheckpointSet::new(Quorums::minimal(1), bft_crypto::digest(b"genesis"), vec![7])
    }

    fn claim(seq: SeqNum, replica: ReplicaId, tag: u8) -> Checkpoint {
        Checkpoint {
            seq,
            state_digest: bft_crypto::digest(&[tag]),
            replica,
        }
    }

    #[test]
    fn genesis_is_stable() {
        let s = set();
        assert_eq!(s.stable_seq(), 0);
        assert_eq!(s.stable_snapshot(), Some([7u8].as_slice()));
    }

    #[test]
    fn quorum_makes_stable() {
        let mut s = set();
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
        assert!(s.add_claim(&claim(128, 1, 1)).is_none());
        let stable = s.add_claim(&claim(128, 2, 1)).expect("2f+1 claims");
        assert_eq!(stable.seq, 128);
        assert!(s.make_stable(stable.seq, stable.digest));
        assert_eq!(s.stable_seq(), 128);
    }

    #[test]
    fn mismatched_digests_do_not_form_quorum() {
        let mut s = set();
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
        assert!(s.add_claim(&claim(128, 1, 2)).is_none());
        assert!(s.add_claim(&claim(128, 2, 3)).is_none());
        // A fourth claim matching one of them still only makes 2 < 2f+1.
        assert!(s.add_claim(&claim(128, 3, 1)).is_none());
    }

    #[test]
    fn duplicate_claims_count_once() {
        let mut s = set();
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
        assert!(s.add_claim(&claim(128, 0, 1)).is_none());
    }

    #[test]
    fn stale_claims_ignored() {
        let mut s = set();
        for r in 0..3 {
            let res = s.add_claim(&claim(128, r, 1));
            if r == 2 {
                let st = res.expect("stable");
                s.make_stable(st.seq, st.digest);
            }
        }
        assert!(s.add_claim(&claim(100, 3, 9)).is_none(), "below stable");
        assert!(!s.make_stable(100, bft_crypto::digest(b"x")));
    }

    #[test]
    fn own_checkpoints_announceable_only_after_commit() {
        let mut s = set();
        s.note_own(128, bft_crypto::digest(&[1]), vec![1]);
        s.note_own(256, bft_crypto::digest(&[2]), vec![2]);
        assert_eq!(s.announceable(128).len(), 1);
        assert_eq!(s.announceable(300).len(), 2);
        s.mark_announced(128).expect("exists");
        assert_eq!(s.announceable(300).len(), 1);
    }

    #[test]
    fn make_stable_prunes_older_own_checkpoints() {
        let mut s = set();
        s.note_own(128, bft_crypto::digest(&[1]), vec![1]);
        s.note_own(256, bft_crypto::digest(&[2]), vec![2]);
        s.make_stable(256, bft_crypto::digest(&[2]));
        assert!(s.own(128).is_none());
        assert!(s.own(256).is_some());
        assert_eq!(s.stable_snapshot(), Some([2u8].as_slice()));
    }

    #[test]
    fn quorum_beyond_detects_lag() {
        let mut s = set();
        for r in 0..3 {
            s.add_claim(&claim(512, r, 4));
        }
        let evidence = s.quorum_beyond(128).expect("quorum at 512");
        assert_eq!(evidence.seq, 512);
        assert!(s.quorum_beyond(512).is_none());
    }
}
