//! Proactive recovery state (Castro & Liskov's follow-up to the paper:
//! recover replicas *before* they are known faulty, so faults do not
//! accumulate past `f` over the system's lifetime).
//!
//! The [`RecoveryManager`] tracks two things:
//!
//! - **Our own recovery** as a small state machine: `Idle` →
//!   `AwaitingAttestation` (fresh keys announced, collecting `f+1`
//!   matching stable-checkpoint attestations — the recovering replica
//!   trusts *nothing* it holds locally, including its own checkpoint
//!   store) → `Auditing` (state audited partition-by-partition against
//!   the attested Merkle root, mismatches re-fetched) → `Idle`.
//! - **Peer recovery leases**: when a peer announces RECOVER we remember
//!   a lease expiry; our own watchdog defers while any lease is live, so
//!   at most one replica is in-recovery at a time (for f = 1) even
//!   though every replica runs its own staggered timer — the same
//!   budget discipline the chaos planner applies to injected faults.
//!
//! The attestation threshold is [`Quorums::witness_quorum`] (`f+1`):
//! MAC-authenticated attestations are not transferable certificates, so
//! the recovering replica acts only on matching claims from enough
//! distinct peers that at least one is correct.

use crate::types::{Quorums, ReplicaId, SeqNum};
use bft_crypto::md5::Digest;
use std::collections::BTreeMap;

/// Where this replica is in its own recovery.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RecoveryStage {
    /// Not recovering.
    #[default]
    Idle,
    /// RECOVER multicast; collecting stable-checkpoint attestations.
    AwaitingAttestation {
        /// Per-peer (stable seq, Merkle root) claims, in replica order.
        votes: BTreeMap<ReplicaId, (SeqNum, Digest)>,
        /// When the recovery began (ns), for time-to-heal accounting.
        since_ns: u64,
    },
    /// Attested root obtained; auditing state against it (re-fetching
    /// mismatched partitions through the state-transfer path).
    Auditing {
        /// The attested stable checkpoint being audited against.
        seq: SeqNum,
        /// When the recovery began (ns).
        since_ns: u64,
    },
}

/// Recovery bookkeeping for one replica: its own stage plus peer leases.
#[derive(Debug, Default)]
pub struct RecoveryManager {
    stage: RecoveryStage,
    /// Lease expiry (ns) per recovering peer. A lease is granted on
    /// RECOVER and released early by RECOVER(done) or by expiry.
    leases: BTreeMap<ReplicaId, u64>,
}

impl RecoveryManager {
    /// A manager with no recovery in progress and no leases.
    pub fn new() -> RecoveryManager {
        RecoveryManager::default()
    }

    /// True while our own recovery is running (any non-idle stage). A
    /// replica in this state must not serve read-only replies: its state
    /// is suspect until the audit completes (arXiv:2107.11144 makes the
    /// read-only path the liveness-critical one under degraded replicas).
    pub fn in_progress(&self) -> bool {
        self.stage != RecoveryStage::Idle
    }

    /// The current stage.
    pub fn stage(&self) -> &RecoveryStage {
        &self.stage
    }

    /// Starts our own recovery: begins collecting attestations.
    pub fn begin(&mut self, now_ns: u64) {
        self.stage = RecoveryStage::AwaitingAttestation {
            votes: BTreeMap::new(),
            since_ns: now_ns,
        };
    }

    /// Records a peer's stable-checkpoint attestation. Ignored unless we
    /// are awaiting attestations; a peer's latest claim wins.
    pub fn note_vote(&mut self, from: ReplicaId, seq: SeqNum, digest: Digest) {
        if let RecoveryStage::AwaitingAttestation { votes, .. } = &mut self.stage {
            votes.insert(from, (seq, digest));
        }
    }

    /// The highest (seq, digest) attested by a witness quorum of distinct
    /// peers, if any. `f+1` matching claims contain at least one correct
    /// replica, so the root is trustworthy even though we trust nothing
    /// local.
    pub fn attested(&self, q: &Quorums) -> Option<(SeqNum, Digest)> {
        let RecoveryStage::AwaitingAttestation { votes, .. } = &self.stage else {
            return None;
        };
        let mut counts: BTreeMap<(SeqNum, Digest), usize> = BTreeMap::new();
        for &claim in votes.values() {
            *counts.entry(claim).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .filter(|&(_, n)| n >= q.witness_quorum())
            .map(|(claim, _)| claim)
            .max_by_key(|&(seq, _)| seq)
    }

    /// Moves from attestation-collecting to auditing against `seq`.
    pub fn start_audit(&mut self, seq: SeqNum) {
        let since_ns = match &self.stage {
            RecoveryStage::AwaitingAttestation { since_ns, .. } => *since_ns,
            RecoveryStage::Auditing { since_ns, .. } => *since_ns,
            RecoveryStage::Idle => 0,
        };
        self.stage = RecoveryStage::Auditing { seq, since_ns };
    }

    /// The checkpoint under audit, if auditing.
    pub fn auditing_seq(&self) -> Option<SeqNum> {
        match &self.stage {
            RecoveryStage::Auditing { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    /// When the in-progress recovery began (ns), if any.
    pub fn since_ns(&self) -> Option<u64> {
        match &self.stage {
            RecoveryStage::Idle => None,
            RecoveryStage::AwaitingAttestation { since_ns, .. }
            | RecoveryStage::Auditing { since_ns, .. } => Some(*since_ns),
        }
    }

    /// Completes our own recovery.
    pub fn finish(&mut self) {
        self.stage = RecoveryStage::Idle;
    }

    /// Grants (or extends) a peer's recovery lease until `until_ns`.
    pub fn grant_lease(&mut self, replica: ReplicaId, until_ns: u64) {
        let entry = self.leases.entry(replica).or_insert(0);
        *entry = (*entry).max(until_ns);
    }

    /// Releases a peer's lease (its RECOVER(done) arrived).
    pub fn release_lease(&mut self, replica: ReplicaId) {
        self.leases.remove(&replica);
    }

    /// If another replica holds a live recovery lease at `now_ns`,
    /// returns the latest such expiry — our own watchdog defers until
    /// then. Expired leases are pruned as a side effect, so a recovering
    /// replica that crashed before sending RECOVER(done) only blocks
    /// peers for the bounded lease duration.
    pub fn lease_blocking(&mut self, me: ReplicaId, now_ns: u64) -> Option<u64> {
        self.leases.retain(|_, &mut until| until > now_ns);
        self.leases
            .iter()
            .filter(|&(&r, _)| r != me)
            .map(|(_, &until)| until)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Quorums {
        Quorums::minimal(1)
    }

    fn digest(tag: u8) -> Digest {
        bft_crypto::digest(&[tag])
    }

    #[test]
    fn attestation_needs_a_witness_quorum() {
        let mut rm = RecoveryManager::new();
        rm.begin(5);
        assert!(rm.in_progress());
        assert_eq!(rm.since_ns(), Some(5));
        rm.note_vote(1, 128, digest(1));
        assert_eq!(rm.attested(&q()), None, "one claim is not enough");
        rm.note_vote(2, 128, digest(1));
        assert_eq!(rm.attested(&q()), Some((128, digest(1))));
    }

    #[test]
    fn mismatched_attestations_do_not_combine() {
        let mut rm = RecoveryManager::new();
        rm.begin(0);
        rm.note_vote(1, 128, digest(1));
        rm.note_vote(2, 128, digest(2));
        rm.note_vote(3, 64, digest(1));
        assert_eq!(rm.attested(&q()), None, "claims must match exactly");
    }

    #[test]
    fn highest_attested_checkpoint_wins() {
        let mut rm = RecoveryManager::new();
        rm.begin(0);
        rm.note_vote(0, 64, digest(1));
        rm.note_vote(1, 64, digest(1));
        rm.note_vote(2, 128, digest(2));
        rm.note_vote(3, 128, digest(2));
        assert_eq!(
            rm.attested(&q()),
            Some((128, digest(2))),
            "with two attested checkpoints, adopt the most recent"
        );
    }

    #[test]
    fn a_peers_latest_claim_replaces_its_earlier_one() {
        let mut rm = RecoveryManager::new();
        rm.begin(0);
        rm.note_vote(1, 64, digest(1));
        rm.note_vote(1, 128, digest(2));
        rm.note_vote(2, 128, digest(2));
        assert_eq!(rm.attested(&q()), Some((128, digest(2))));
    }

    #[test]
    fn stage_transitions() {
        let mut rm = RecoveryManager::new();
        assert!(!rm.in_progress());
        rm.begin(7);
        rm.start_audit(128);
        assert_eq!(rm.auditing_seq(), Some(128));
        assert_eq!(rm.since_ns(), Some(7), "audit keeps the start time");
        assert!(rm.in_progress());
        rm.finish();
        assert!(!rm.in_progress());
        assert_eq!(rm.auditing_seq(), None);
    }

    #[test]
    fn leases_block_until_expiry_or_release() {
        let mut rm = RecoveryManager::new();
        assert_eq!(rm.lease_blocking(0, 100), None);
        rm.grant_lease(2, 500);
        assert_eq!(rm.lease_blocking(0, 100), Some(500));
        // Our own lease never blocks us.
        assert_eq!(rm.lease_blocking(2, 100), None);
        // Expiry prunes.
        assert_eq!(rm.lease_blocking(0, 500), None);
        // Early release.
        rm.grant_lease(3, 900);
        rm.release_lease(3);
        assert_eq!(rm.lease_blocking(0, 100), None);
    }

    #[test]
    fn lease_extensions_never_shorten() {
        let mut rm = RecoveryManager::new();
        rm.grant_lease(1, 800);
        rm.grant_lease(1, 300);
        assert_eq!(rm.lease_blocking(0, 0), Some(800));
    }
}
