//! Protocol configuration: group size, windows, and the optimization
//! toggles the paper ablates in Section 4.4.

use crate::types::Quorums;
use bft_sim::cost::CostModel;
use bft_sim::time::dur;

/// The five normal-case optimizations from Section 3.1, plus piggybacked
/// commits. Each benchmark figure toggles exactly one of these.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// *Digest replies*: only the designated replica sends the full result;
    /// the others send its digest.
    pub digest_replies: bool,
    /// *Tentative execution*: execute once prepared (4 message delays);
    /// clients wait for `2f+1` matching tentative replies.
    pub tentative_execution: bool,
    /// *Read-only operations*: single round trip for side-effect-free ops.
    pub read_only: bool,
    /// *Request batching*: order a batch per protocol instance, with a
    /// sliding window of concurrent instances.
    pub batching: bool,
    /// *Separate request transmission*: clients multicast requests larger
    /// than the inline threshold; pre-prepares carry only digests.
    pub separate_request_transmission: bool,
    /// *Piggybacked commits*: commit announcements ride on the next
    /// pre-prepare/prepare instead of separate messages. Off by default —
    /// the paper notes this one was not part of the released library.
    pub piggyback_commits: bool,
}

impl Optimizations {
    /// Everything the released BFT library shipped with (all but
    /// piggybacked commits).
    pub const LIBRARY: Optimizations = Optimizations {
        digest_replies: true,
        tentative_execution: true,
        read_only: true,
        batching: true,
        separate_request_transmission: true,
        piggyback_commits: false,
    };

    /// No optimizations: the base three-phase protocol.
    pub const NONE: Optimizations = Optimizations {
        digest_replies: false,
        tentative_execution: false,
        read_only: false,
        batching: false,
        separate_request_transmission: false,
        piggyback_commits: false,
    };

    /// All optimizations including piggybacked commits.
    pub const ALL: Optimizations = Optimizations {
        piggyback_commits: true,
        ..Optimizations::LIBRARY
    };
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations::LIBRARY
    }
}

/// Full protocol configuration shared by replicas and clients.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct Config {
    /// Group size and fault threshold.
    pub quorums: Quorums,
    /// Checkpoint period `K`: a checkpoint every `K` sequence numbers.
    pub checkpoint_interval: u64,
    /// Log window `L`: the high water mark is `h + L`. Must be a multiple
    /// of `checkpoint_interval` and at least twice it.
    pub log_window: u64,
    /// Sliding window `W` of concurrently ordered batches (Section 3.1).
    pub batch_window: u64,
    /// Upper bound on the summed size of requests in one batch.
    pub max_batch_bytes: usize,
    /// Upper bound on requests per batch.
    pub max_batch_requests: usize,
    /// Requests whose operation exceeds this many bytes are not inlined in
    /// pre-prepares when separate request transmission is on (255 B in the
    /// paper).
    pub inline_threshold: usize,
    /// Optimization toggles.
    pub opts: Optimizations,
    /// *Incremental checkpoints*: charge checkpoint digests for only the
    /// partitions dirtied since the previous checkpoint (the paper's
    /// incremental hierarchical state digests). When off, every
    /// checkpoint is charged as if all partitions were re-hashed —
    /// protocol behaviour is identical, only the simulated CPU cost
    /// changes.
    pub incremental_checkpoints: bool,
    /// *Optimistic fast path*: a slot commits in two rounds when every
    /// replica's prepare vote arrives (a fast quorum,
    /// [`Quorums::fast_quorum`]), skipping the commit phase entirely.
    /// Each slot falls back to the classic three-phase path on timeout,
    /// conflicting votes, or a peer's explicit COMMIT. Off by default:
    /// the classic path is the paper's protocol.
    pub fast_path: bool,
    /// How long a prepared slot waits for the full fast quorum before
    /// falling back to the classic commit phase. Only meaningful with
    /// [`Config::fast_path`] on.
    pub fast_path_timeout_ns: u64,
    /// CPU cost model for all principals.
    pub cost: CostModel,
    /// Backup timer: how long a request may stay un-executed before the
    /// backup suspects the primary and starts a view change.
    pub view_change_timeout_ns: u64,
    /// Ceiling for the exponential view-change timeout doubling. Without
    /// a cap, a long partition doubles the timeout unboundedly and the
    /// healed group waits minutes before re-electing; with one, the first
    /// election after a heal starts within this bound.
    pub view_change_timeout_max_ns: u64,
    /// Client retransmission timeout.
    pub client_retry_timeout_ns: u64,
    /// Ceiling for the client's retransmission backoff (the base timeout
    /// scaled by observed latency and doubled per retry). Without a cap,
    /// a few pathologically slow operations — e.g. ops that each limp
    /// through a view-change cycle — poison the latency estimate and the
    /// next retransmission waits out minutes, long after the cluster
    /// recovered; with one, a healed cluster hears from the client again
    /// within this bound.
    pub client_retry_timeout_max_ns: u64,
    /// Period of the replica's retransmission sweep over stalled slots.
    pub resend_interval_ns: u64,
    /// How long pending piggybacked commits may wait for a carrier message
    /// before being flushed as explicit commits.
    pub piggyback_flush_ns: u64,
    /// Period of session-key refresh (NEW-KEY announcements); 0 disables.
    pub key_refresh_interval_ns: u64,
    /// Period of proactive recovery per replica (staggered by replica id);
    /// 0 disables. See Section 2 of the paper: proactive recovery bounds
    /// the window of vulnerability.
    pub proactive_recovery_interval_ns: u64,
    /// How long peers reserve the single in-recovery slot for a replica
    /// that announced RECOVER. A watchdog that fires while another
    /// replica's lease is live defers, so staggered recoveries never
    /// overlap even when timers drift together.
    pub recovery_lease_ns: u64,
    /// *Read leases* (arXiv:2107.11144): the primary grants backups
    /// time-bounded read leases and fences writes against them, so
    /// read-only requests stay one round trip — and linearizable — even
    /// under concurrent writes, instead of falling back to the ordered
    /// read-write path. Off by default: the paper's read-only
    /// optimization alone retries conflicted reads as read-write.
    pub read_leases: bool,
    /// Read-lease validity window, measured from receipt at each holder.
    /// The primary renews at half this period while reads are being
    /// served. Only meaningful with [`Config::read_leases`] on.
    pub read_lease_ns: u64,
    /// *Admission control*: per-client in-flight quotas and depth caps
    /// on every request-holding queue in the replica; over-limit
    /// requests are shed with a BUSY pushback instead of growing the
    /// backlog without bound. Off by default: the paper's protocol has
    /// no overload armor.
    pub admission_control: bool,
    /// Per-client cap on requests a replica will hold concurrently
    /// (batched plus pending) when admission control is on.
    pub admission_client_quota: usize,
    /// Total ingest-backlog cap (pending batch + pending requests) per
    /// replica when admission control is on; beyond it every new
    /// request is shed regardless of sender.
    pub admission_queue_cap: usize,
    /// Backoff hint carried in BUSY pushback messages: how long the
    /// shedding replica asks the client to wait before retrying.
    pub busy_retry_after_ns: u64,
    /// Retry allowance before the client flags an operation as starved
    /// (each BUSY received extends the allowance by one, so backing
    /// off under pushback is never itself counted as starvation).
    /// 0 disables the budget.
    pub client_retry_budget: u32,
}

impl Config {
    /// The paper's default configuration for a group tolerating `f`
    /// faults.
    pub fn new(f: u32) -> Config {
        Config {
            quorums: Quorums::minimal(f),
            checkpoint_interval: 128,
            log_window: 256,
            batch_window: 2,
            max_batch_bytes: 8 * 1024,
            max_batch_requests: 64,
            inline_threshold: 255,
            opts: Optimizations::LIBRARY,
            incremental_checkpoints: true,
            fast_path: false,
            fast_path_timeout_ns: dur::millis(1),
            cost: CostModel::PIII_600,
            view_change_timeout_ns: dur::millis(2_000),
            view_change_timeout_max_ns: dur::millis(16_000),
            client_retry_timeout_ns: dur::millis(250),
            client_retry_timeout_max_ns: dur::secs(5),
            resend_interval_ns: dur::millis(100),
            piggyback_flush_ns: dur::micros(500),
            key_refresh_interval_ns: 0,
            proactive_recovery_interval_ns: 0,
            recovery_lease_ns: dur::millis(300),
            read_leases: false,
            read_lease_ns: dur::millis(100),
            admission_control: false,
            admission_client_quota: 16,
            admission_queue_cap: 4_096,
            busy_retry_after_ns: dur::millis(5),
            client_retry_budget: 0,
        }
    }

    /// Returns the configuration with different optimization toggles.
    pub fn with_opts(mut self, opts: Optimizations) -> Config {
        self.opts = opts;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the log window is not a multiple of (or is too small
    /// relative to) the checkpoint interval, or limits are zero.
    pub fn validate(&self) {
        assert!(self.checkpoint_interval > 0);
        assert!(
            self.log_window >= 2 * self.checkpoint_interval,
            "log window must cover at least two checkpoint periods"
        );
        assert_eq!(
            self.log_window % self.checkpoint_interval,
            0,
            "log window must be a multiple of the checkpoint interval"
        );
        assert!(self.batch_window >= 1);
        assert!(self.max_batch_requests >= 1);
        assert!(self.max_batch_bytes >= 1);
        assert!(
            self.view_change_timeout_max_ns >= self.view_change_timeout_ns,
            "view-change timeout cap must be at least the base timeout"
        );
        assert!(
            self.client_retry_timeout_max_ns >= self.client_retry_timeout_ns,
            "client retry cap must be at least the base timeout"
        );
        if self.fast_path {
            assert!(
                self.fast_path_timeout_ns > 0,
                "fast-path fallback timeout must be positive"
            );
        }
        if self.read_leases {
            assert!(
                self.read_lease_ns > 0,
                "read-lease duration must be positive"
            );
            assert!(
                self.opts.read_only,
                "read leases require the read-only optimization"
            );
            // The grant-evidence window (2 × duration) plus the lease
            // duration itself must fit inside the view-change timeout:
            // a primary partitioned from the group must stop granting
            // (and its last leases expire) before the group can have
            // re-elected and started ordering writes the stranded
            // holders never saw.
            assert!(
                3 * self.read_lease_ns <= self.view_change_timeout_ns,
                "read-lease duration too long: 3x must fit in the view-change timeout"
            );
        }
        if self.admission_control {
            assert!(
                self.admission_client_quota >= 1,
                "admission client quota must admit at least one request"
            );
            assert!(
                self.admission_queue_cap >= self.admission_client_quota,
                "admission queue cap must cover at least one client quota"
            );
            assert!(
                self.busy_retry_after_ns > 0,
                "busy retry-after hint must be positive"
            );
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> u32 {
        self.quorums.n
    }

    /// Fault threshold.
    pub fn f(&self) -> u32 {
        self.quorums.f
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        Config::default().validate();
        Config::new(2).validate();
    }

    #[test]
    fn library_opts_match_paper() {
        let o = Optimizations::LIBRARY;
        assert!(o.digest_replies && o.tentative_execution && o.read_only);
        assert!(o.batching && o.separate_request_transmission);
        assert!(!o.piggyback_commits, "not part of the released library");
    }

    #[test]
    #[should_panic(expected = "log window")]
    fn bad_window_rejected() {
        let c = Config {
            log_window: 100,
            ..Config::default()
        };
        c.validate();
    }

    #[test]
    fn with_opts_replaces_toggles() {
        let c = Config::default().with_opts(Optimizations::NONE);
        assert!(!c.opts.batching);
    }

    #[test]
    #[should_panic(expected = "read-lease duration")]
    fn zero_lease_duration_rejected() {
        let c = Config {
            read_leases: true,
            read_lease_ns: 0,
            ..Config::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "read-only optimization")]
    fn leases_without_read_only_rejected() {
        let c = Config {
            read_leases: true,
            ..Config::default().with_opts(Optimizations::NONE)
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "duration too long")]
    fn oversized_lease_duration_rejected() {
        let c = Config {
            read_leases: true,
            read_lease_ns: dur::millis(1_000),
            ..Config::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "admission client quota")]
    fn zero_admission_quota_rejected() {
        let c = Config {
            admission_control: true,
            admission_client_quota: 0,
            ..Config::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "admission queue cap")]
    fn undersized_admission_cap_rejected() {
        let c = Config {
            admission_control: true,
            admission_client_quota: 32,
            admission_queue_cap: 8,
            ..Config::default()
        };
        c.validate();
    }

    #[test]
    fn admission_defaults_are_valid_when_armed() {
        let c = Config {
            admission_control: true,
            client_retry_budget: 50,
            ..Config::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "timeout cap")]
    fn bad_timeout_cap_rejected() {
        let c = Config {
            view_change_timeout_max_ns: 1,
            ..Config::default()
        };
        c.validate();
    }
}
