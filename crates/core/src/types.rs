//! Core protocol identifiers and quorum arithmetic.

/// A replica index in `0..n`.
pub type ReplicaId = u32;

/// A client identifier. In the simulation, clients use node ids `>= n`.
pub type ClientId = u32;

/// A view number. The primary of view `v` is replica `v mod n`.
pub type View = u64;

/// A protocol sequence number (one per batch).
pub type SeqNum = u64;

/// Client-local request timestamp (monotonically increasing per client).
pub type Timestamp = u64;

/// Group size / fault-threshold arithmetic for a group of `n = 3f + 1`
/// replicas.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quorums {
    /// Number of replicas.
    pub n: u32,
    /// Maximum number of faulty replicas tolerated.
    pub f: u32,
}

impl Quorums {
    /// Creates quorum parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 3f + 1` and `f >= 1`.
    pub fn new(n: u32, f: u32) -> Quorums {
        assert!(f >= 1, "f must be at least 1");
        assert!(n > 3 * f, "need n >= 3f+1 (n={n}, f={f})");
        Quorums { n, f }
    }

    /// The smallest group tolerating `f` faults: `n = 3f + 1`.
    pub fn minimal(f: u32) -> Quorums {
        Quorums::new(3 * f + 1, f)
    }

    /// The primary of view `v`.
    pub fn primary(&self, v: View) -> ReplicaId {
        (v % self.n as u64) as ReplicaId
    }

    /// Prepares needed (besides the pre-prepare) for a prepared
    /// certificate: `2f`.
    pub fn prepare_quorum(&self) -> usize {
        2 * self.f as usize
    }

    /// Commits needed for a committed certificate: `2f + 1`.
    pub fn commit_quorum(&self) -> usize {
        2 * self.f as usize + 1
    }

    /// Matching replies a client needs for a *committed* result: `f + 1`.
    pub fn reply_quorum(&self) -> usize {
        self.f as usize + 1
    }

    /// Matching replies a client needs for a *tentative* or read-only
    /// result: `2f + 1`.
    pub fn tentative_reply_quorum(&self) -> usize {
        2 * self.f as usize + 1
    }

    /// Checkpoint messages needed for a stable checkpoint: `2f + 1`.
    pub fn checkpoint_quorum(&self) -> usize {
        2 * self.f as usize + 1
    }

    /// View-change messages needed to install a new view: `2f + 1`.
    pub fn view_change_quorum(&self) -> usize {
        2 * self.f as usize + 1
    }

    /// Prepare votes (the primary's pre-prepare counted as its vote)
    /// needed to commit a slot on the optimistic fast path: all `n`
    /// replicas (`= 3f + 1` at f-minimal sizing).
    ///
    /// The threshold must be `n`, not the `n − f` of protocols sized
    /// `n ≥ 5f + 1`: this implementation's view-change quorum is
    /// `2f + 1`, and a fast certificate is only recoverable when every
    /// view-change quorum is guaranteed `f + 1` *correct* reporters of
    /// the fast vote. With all `n` voting, at least `n − f` voters are
    /// correct, and any `2f + 1` view-change quorum intersects them in
    /// `≥ (n − f) + (2f + 1) − n = f + 1` replicas. A quorum of `n − f`
    /// voters would leave that intersection as small as one replica —
    /// an equivocating primary could then cancel the lone report with a
    /// conflicting vote and lose a client-visible commit.
    pub fn fast_quorum(&self) -> usize {
        self.n as usize
    }

    /// Revoke acks the primary needs before the write fence lifts: all
    /// `n − 1` backups (arXiv:2107.11144).
    ///
    /// The threshold is every holder, not a quorum: a lease is granted to
    /// each backup individually, and any *one* un-revoked correct holder
    /// could keep serving reads from pre-write state while the write
    /// commits. Waiting for a mere quorum of acks would leave that
    /// straggler leased. Unreachable holders cannot block writes forever,
    /// though — the fence also lifts when the last grant's conservative
    /// expiry passes, so `n − 1` acks is purely the fast lift.
    pub fn lease_revoke_quorum(&self) -> usize {
        self.n as usize - 1
    }

    /// Fresh liveness reports from distinct backups a primary needs
    /// before granting (or renewing) a read lease: `2f`.
    ///
    /// With the primary's own vote that is a majority-intersecting
    /// `2f + 1` view: any later view change's `2f + 1` quorum overlaps
    /// it in a correct replica, so a deposed primary — which by
    /// definition lost contact with some view-change participant —
    /// stops meeting this bar within one evidence window and its
    /// outstanding grants drain by expiry before the new view orders
    /// writes.
    pub fn lease_evidence_quorum(&self) -> usize {
        2 * self.f as usize
    }

    /// Matching assertions from `f + 1` *distinct* replicas are
    /// guaranteed to include one from a correct replica — the bound for
    /// joining an in-progress view change and for trusting peer claims
    /// that a batch committed (backfill).
    pub fn witness_quorum(&self) -> usize {
        self.f as usize + 1
    }

    /// All replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        0..self.n
    }

    /// All replica ids except `me`.
    pub fn others(&self, me: ReplicaId) -> Vec<ReplicaId> {
        (0..self.n).filter(|&r| r != me).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_group_sizes() {
        let q = Quorums::minimal(1);
        assert_eq!(q.n, 4);
        assert_eq!(q.prepare_quorum(), 2);
        assert_eq!(q.commit_quorum(), 3);
        assert_eq!(q.reply_quorum(), 2);
        assert_eq!(q.tentative_reply_quorum(), 3);
        assert_eq!(q.fast_quorum(), 4);
        assert_eq!(q.lease_revoke_quorum(), 3);

        let q2 = Quorums::minimal(2);
        assert_eq!(q2.n, 7);
        assert_eq!(q2.commit_quorum(), 5);
        assert_eq!(q2.fast_quorum(), 7);
        assert_eq!(q2.lease_revoke_quorum(), 6);
    }

    #[test]
    fn fast_quorum_survives_every_view_change_quorum() {
        // A fast certificate must be reported by at least f+1 correct
        // replicas inside *any* 2f+1 view-change quorum: with all n
        // voting and at most f Byzantine, the worst-case intersection of
        // correct fast voters with a view-change quorum is
        // (n - f) + (2f + 1) - n = f + 1.
        for f in 1..5u32 {
            let q = Quorums::minimal(f);
            let correct_voters = q.fast_quorum() as i64 - q.f as i64;
            let overlap = correct_voters + q.view_change_quorum() as i64 - q.n as i64;
            assert!(overlap > q.f as i64, "f={f}");
        }
    }

    #[test]
    fn primary_rotates() {
        let q = Quorums::minimal(1);
        assert_eq!(q.primary(0), 0);
        assert_eq!(q.primary(1), 1);
        assert_eq!(q.primary(4), 0);
        assert_eq!(q.primary(7), 3);
    }

    #[test]
    fn overprovisioned_group() {
        // n may exceed 3f+1; quorums depend only on f.
        let q = Quorums::new(5, 1);
        assert_eq!(q.commit_quorum(), 3);
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn undersized_group_rejected() {
        Quorums::new(3, 1);
    }

    #[test]
    fn others_excludes_self() {
        let q = Quorums::minimal(1);
        assert_eq!(q.others(2), vec![0, 1, 3]);
    }

    #[test]
    fn quorum_intersection_invariant() {
        // Any two commit quorums intersect in at least f+1 replicas, so at
        // least one correct replica is in both — the core safety argument.
        for f in 1..5u32 {
            let q = Quorums::minimal(f);
            let overlap = 2 * q.commit_quorum() as i64 - q.n as i64;
            assert!(overlap > q.f as i64, "f={f}");
        }
    }
}
