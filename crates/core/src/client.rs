//! The BFT client: submits operations, collects reply quorums, and
//! retransmits — with the digest-replies and read-only optimizations.
//!
//! Application behaviour (what to invoke and when) is supplied by a
//! [`ClientDriver`]; the workload crates implement drivers for the paper's
//! micro-benchmark, Andrew, and PostMark.

use crate::config::Config;
use crate::invariants::OpEvent;
use crate::messages::{AuthTag, Busy, Msg, Packet, Reply, Request, REPLIER_ALL};
use crate::types::{ClientId, ReplicaId, Timestamp, View};
use crate::wire::Wire;
use bft_crypto::keychain::KeyChain;
use bft_crypto::md5::Digest;
use bft_sim::{
    Context, CostKind, Counter, Node, NodeId, SimTime, SpanEdge, TimerId, TraceMeta, TracePhase,
};
use std::any::Any;
use std::collections::BTreeMap;

const TIMER_RETRY: u64 = 0;
/// Recurring fault-injection pacing timer ([`ClientBehavior`]); below
/// `DRIVER_TOKEN_BASE` so it can never collide with a driver token.
const TIMER_FAULT: u64 = 999;
const DRIVER_TOKEN_BASE: u64 = 1_000;

/// Cap on BUSY-driven backoff rounds per operation: a Byzantine replica
/// holding valid keys can send BUSY too, and each acceptance re-arms the
/// retry timer — unbounded acceptance would let one faulty replica delay
/// a retransmission forever.
const BUSY_ROUNDS_CAP: u32 = 16;

/// Fault-injection behaviours for clients, the client-side counterpart
/// of [`crate::replica::Behavior`]. A correct client is closed-loop (one
/// outstanding operation); these make it misbehave in a specific,
/// reproducible way. The flood operation is the counter workload's "get"
/// (state-neutral), so chaos invariants over the replicated counter are
/// unaffected by how many flood requests execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientBehavior {
    /// Follow the protocol.
    #[default]
    Correct,
    /// Open-loop flood: abandon any outstanding operation and submit a
    /// fresh one every `interval_ns`, ignoring the closed-loop
    /// discipline entirely.
    Flood {
        /// Pacing interval between flood submissions.
        interval_ns: u64,
    },
    /// Retransmission storm: re-send the outstanding request every
    /// `interval_ns` (duplicate/replay pressure on dedup paths).
    Replay {
        /// Pacing interval between replays.
        interval_ns: u64,
    },
    /// Send requests whose authenticator never verifies every
    /// `interval_ns` (pure verification-cost flooding).
    Malformed {
        /// Pacing interval between malformed sends.
        interval_ns: u64,
    },
}

impl ClientBehavior {
    fn interval_ns(self) -> Option<u64> {
        match self {
            ClientBehavior::Correct => None,
            ClientBehavior::Flood { interval_ns }
            | ClientBehavior::Replay { interval_ns }
            | ClientBehavior::Malformed { interval_ns } => Some(interval_ns.max(1)),
        }
    }
}

/// Application logic driving a [`Client`].
pub trait ClientDriver: 'static {
    /// Called once when the client starts; typically submits the first
    /// operation.
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>);

    /// Called when an operation completes with its result and measured
    /// latency; typically submits the next operation (closed loop) or sets
    /// a think-time timer.
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, result: &[u8], latency_ns: u64);

    /// Called when a timer set via [`ClientApi::set_timer`] fires.
    fn on_timer(&mut self, _api: &mut ClientApi<'_, '_>, _token: u64) {}
}

/// One in-flight operation.
#[derive(Debug)]
struct PendingOp {
    timestamp: Timestamp,
    op: Vec<u8>,
    read_only: bool,
    replier: ReplicaId,
    sent_at: SimTime,
    broadcast: bool,
    retries: u32,
    /// BUSY pushbacks honored for this operation (each extends the
    /// retry budget by one — backing off is not starvation).
    busy_rounds: u32,
    /// The retry budget was already flagged as exhausted for this
    /// operation (count starvation once per op).
    budget_flagged: bool,
    /// Per-replica (result digest, tentative) votes, in replica order so
    /// quorum evaluation is independent of reply arrival hashing.
    replies: BTreeMap<ReplicaId, (Digest, bool)>,
    /// Full result bytes seen, by result digest.
    full: BTreeMap<Digest, Vec<u8>>,
}

/// Client protocol state, separated from the driver so the two can be
/// borrowed simultaneously.
pub struct ClientCore {
    cfg: Config,
    id: ClientId,
    keychain: KeyChain,
    view_guess: View,
    ts: Timestamp,
    pending: Option<PendingOp>,
    retry_timer: Option<TimerId>,
    /// Exponentially weighted moving average of observed latency, driving
    /// the adaptive retransmission timeout (ns).
    latency_ewma: f64,
    /// Completed operation count (also mirrored into the metrics).
    pub completed_ops: u64,
    /// Invoke/complete events for the chaos linearizability checker;
    /// bounded when nobody drains it.
    audit: Vec<OpEvent>,
    /// Fault-injection behavior (chaos testing); `Correct` in production.
    behavior: ClientBehavior,
    /// A `TIMER_FAULT` pacing timer is outstanding.
    fault_timer_armed: bool,
    /// Operations whose bounded retry budget ran out (each counted once);
    /// the chaos `ClientStarvation` invariant watches this.
    starved_ops: u64,
}

impl ClientCore {
    fn new(id: ClientId, cfg: Config) -> ClientCore {
        cfg.validate();
        assert!(id >= cfg.n(), "client ids must not collide with replicas");
        let keychain = KeyChain::new(id, cfg.n());
        ClientCore {
            cfg,
            id,
            keychain,
            view_guess: 0,
            ts: 0,
            pending: None,
            retry_timer: None,
            latency_ewma: 0.0,
            completed_ops: 0,
            audit: Vec::new(),
            behavior: ClientBehavior::Correct,
            fault_timer_armed: false,
            starved_ops: 0,
        }
    }

    /// Deterministic jitter in `0..bound`, splitmix64-hashed from the
    /// client id and `salt` — NOT the simulation RNG, so two clusters fed
    /// the same schedule stay bit-identical and replays are stable, while
    /// clients that timed out in the same instant still retransmit apart
    /// instead of re-synchronizing into the same burst.
    fn jitter(&self, salt: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let mut z = (u64::from(self.id) << 32) ^ salt ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % bound
    }

    /// Retention bound for undrained audit events (long benchmark runs
    /// never read them; the checker drains after every event).
    const AUDIT_CAP: usize = 16_384;

    fn note_audit(&mut self, event: OpEvent) {
        self.audit.push(event);
        if self.audit.len() > Self::AUDIT_CAP {
            self.audit.drain(..Self::AUDIT_CAP / 2);
        }
    }

    fn send_request(&mut self, ctx: &mut Context<'_, Packet>) {
        let Some(p) = &self.pending else { return };
        let req = Request {
            client: self.id,
            timestamp: p.timestamp,
            op: p.op.clone(),
            read_only: p.read_only,
            replier: p.replier,
            auth: AuthTag::None, // replaced below
        };
        let cost = &self.cfg.cost;
        ctx.charge_kind(CostKind::Digest, cost.digest(req.op.len() + 21));
        ctx.charge_kind(CostKind::Mac, cost.authenticator(self.cfg.n(), 16));
        let d = req.digest();
        let auth = AuthTag::Vector(self.keychain.authenticate(d.as_bytes()));
        let req = Request { auth, ..req };
        let multicast = p.read_only
            || p.broadcast
            || (self.cfg.opts.separate_request_transmission
                && req.op.len() > self.cfg.inline_threshold);
        let packet = Packet::unauthenticated(Msg::Request(req));
        let wire = packet.wire_bytes();
        ctx.charge_kind(CostKind::Net, cost.send(wire));
        ctx.count_sent(packet.body.tag());
        if multicast {
            let all: Vec<NodeId> = (0..self.cfg.n()).collect();
            ctx.multicast(&all, packet, wire);
        } else {
            let primary = self.cfg.quorums.primary(self.view_guess);
            ctx.send(primary, packet, wire);
        }
        // Adaptive retransmission: never retransmit before several times
        // the recently observed latency — premature retransmissions under
        // load amplify the congestion that delayed the reply.
        let adaptive = (self.latency_ewma * 4.0) as u64;
        // Capped: a latency estimate poisoned by a few ops that limped
        // through a view change must not push the next retransmission
        // past the cluster's recovery (see `client_retry_timeout_max_ns`).
        let timeout = (self.cfg.client_retry_timeout_ns.max(adaptive) << p.retries.min(4))
            .min(self.cfg.client_retry_timeout_max_ns);
        // Desynchronize retransmissions: clients whose timeouts expire in
        // the same instant (a batch completing late, a primary failing)
        // would otherwise retransmit in lockstep forever. Part of the
        // overload armor, and gated with it so pre-armor seeds replay
        // byte-identically.
        let timeout = if self.cfg.admission_control {
            timeout + self.jitter(p.timestamp ^ (u64::from(p.retries) << 48), timeout / 8 + 1)
        } else {
            timeout
        };
        if let Some(t) = self.retry_timer.take() {
            ctx.cancel_timer(t);
        }
        self.retry_timer = Some(ctx.set_timer(timeout, TIMER_RETRY));
    }

    fn submit_inner(&mut self, ctx: &mut Context<'_, Packet>, op: Vec<u8>, read_only: bool) {
        assert!(
            self.pending.is_none(),
            "one outstanding operation per client"
        );
        self.ts += 1;
        let replier = if self.cfg.opts.digest_replies {
            ((self.ts as u32).wrapping_add(self.id)) % self.cfg.n()
        } else {
            REPLIER_ALL
        };
        self.note_audit(OpEvent::Invoke {
            client: self.id,
            timestamp: self.ts,
            op: op.clone(),
            at_ns: ctx.now().nanos(),
        });
        ctx.trace_now(
            SpanEdge::Open,
            TracePhase::Request,
            TraceMeta {
                client: self.id as u64,
                timestamp: self.ts,
                ..TraceMeta::default()
            },
        );
        self.pending = Some(PendingOp {
            timestamp: self.ts,
            op,
            read_only: read_only && self.cfg.opts.read_only,
            replier,
            sent_at: ctx.now(),
            broadcast: false,
            retries: 0,
            busy_rounds: 0,
            budget_flagged: false,
            replies: BTreeMap::new(),
            full: BTreeMap::new(),
        });
        self.send_request(ctx);
    }

    /// Checks whether a reply quorum has formed; returns the accepted
    /// result if so.
    fn check_complete(&mut self) -> Option<(Vec<u8>, SimTime)> {
        let q = &self.cfg.quorums;
        let p = self.pending.as_ref()?;
        // Ordered maps: if two digests ever both reach quorum (only
        // possible with faulty replicas), every run picks the same one.
        let mut committed: BTreeMap<Digest, usize> = BTreeMap::new();
        let mut total: BTreeMap<Digest, usize> = BTreeMap::new();
        for &(d, tentative) in p.replies.values() {
            *total.entry(d).or_insert(0) += 1;
            if !tentative {
                *committed.entry(d).or_insert(0) += 1;
            }
        }
        for (&d, &n_total) in &total {
            let n_committed = committed.get(&d).copied().unwrap_or(0);
            let quorum_ok =
                n_committed >= q.reply_quorum() || n_total >= q.tentative_reply_quorum();
            if quorum_ok {
                if let Some(result) = p.full.get(&d) {
                    let result = result.clone();
                    let sent_at = p.sent_at;
                    self.pending = None;
                    return Some((result, sent_at));
                }
            }
        }
        None
    }

    fn handle_reply(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        reply: Reply,
        auth: &AuthTag,
        body_bytes_len: usize,
    ) -> Option<(Vec<u8>, u64)> {
        if from >= self.cfg.n() || reply.client != self.id {
            return None;
        }
        let cost = self.cfg.cost;
        ctx.charge_kind(CostKind::Digest, cost.digest(body_bytes_len));
        let p = self.pending.as_ref()?;
        if reply.timestamp != p.timestamp {
            return None;
        }
        // Verify the point-to-point MAC.
        let AuthTag::Mac(mac) = auth else { return None };
        ctx.charge_kind(CostKind::Mac, cost.mac(16));
        let mut body_buf = Vec::new();
        Msg::Reply(reply.clone()).encode(&mut body_buf);
        let d = bft_crypto::digest(&body_buf);
        if !self.keychain.verify_from(from, d.as_bytes(), mac) {
            ctx.metrics().incr("client.bad_reply_auth");
            return None;
        }
        self.view_guess = self.view_guess.max(reply.view);
        let completed_ts = reply.timestamp;
        let result_digest = reply.body.result_digest();
        let p = self.pending.as_mut()?;
        if let crate::messages::ReplyBody::Full(bytes) = reply.body {
            // The digest charged above (over the reply body) covers the
            // result-hash work; no extra per-byte cost here.
            p.full.insert(result_digest, bytes);
        }
        p.replies.insert(from, (result_digest, reply.tentative));
        let Some((result, sent_at)) = self.check_complete() else {
            self.maybe_fast_ro_retry(ctx);
            return None;
        };
        if let Some(t) = self.retry_timer.take() {
            ctx.cancel_timer(t);
        }
        let latency = ctx.now().since(sent_at);
        self.latency_ewma = if self.latency_ewma == 0.0 {
            latency as f64
        } else {
            0.8 * self.latency_ewma + 0.2 * latency as f64
        };
        self.completed_ops += 1;
        ctx.metrics().incr("client.ops_completed");
        ctx.metrics().record("client.latency", latency);
        // The span close is the reply-recv edge of the request lifecycle;
        // `trace_now` stamps it at `now`, matching the latency recorded
        // above (`now - sent_at`), so assembled phase times sum exactly
        // to the measured end-to-end latency.
        ctx.trace_now(
            SpanEdge::Close,
            TracePhase::Request,
            TraceMeta {
                client: self.id as u64,
                timestamp: completed_ts,
                ..TraceMeta::default()
            },
        );
        self.note_audit(OpEvent::Complete {
            client: self.id,
            timestamp: completed_ts,
            result: result.clone(),
            at_ns: ctx.now().nanos(),
        });
        Some((result, latency))
    }

    /// Re-issues a read-only round immediately once it is provably dead.
    /// Two ways a round dies when holders answer on both sides of a
    /// write's revoke/regrant boundary:
    ///
    /// - *split*: enough replicas answered that no result digest can
    ///   still reach a reply quorum;
    /// - *body starvation*: a digest can (or did) reach quorum, but only
    ///   the designated replier sends full results, it already answered
    ///   with a different (stale) digest, and no outstanding reply will
    ///   carry the body either.
    ///
    /// Either way the round cannot complete; waiting out the
    /// retransmission timer would park a "one-round" read for the full
    /// client timeout.
    fn maybe_fast_ro_retry(&mut self, ctx: &mut Context<'_, Packet>) {
        let q = self.cfg.quorums;
        let n = self.cfg.n() as usize;
        let Some(p) = &mut self.pending else { return };
        if !p.read_only || !self.cfg.read_leases || p.retries >= 2 {
            return;
        }
        let remaining = n - p.replies.len();
        let mut committed: BTreeMap<Digest, usize> = BTreeMap::new();
        let mut total: BTreeMap<Digest, usize> = BTreeMap::new();
        for &(d, tentative) in p.replies.values() {
            *total.entry(d).or_insert(0) += 1;
            if !tentative {
                *committed.entry(d).or_insert(0) += 1;
            }
        }
        // A digest is viable only if the outstanding replies could still
        // push it to a quorum AND a full result body for it is present
        // or could still arrive: from the designated replier if it has
        // not answered yet, or — when every replica sends full bodies —
        // from any outstanding reply. An as-yet-unseen digest is covered
        // by the (None, 0, 0) case.
        let replier_pending = p.replier != REPLIER_ALL && !p.replies.contains_key(&p.replier);
        let viable = |d: Option<&Digest>, n_total: usize, n_committed: usize| {
            let counts_ok = n_committed + remaining >= q.reply_quorum()
                || n_total + remaining >= q.tentative_reply_quorum();
            let body_ok = d.is_some_and(|d| p.full.contains_key(d))
                || replier_pending
                || (p.replier == REPLIER_ALL && remaining > 0);
            counts_ok && body_ok
        };
        let any_viable = viable(None, 0, 0)
            || total
                .iter()
                .any(|(d, &t)| viable(Some(d), t, committed.get(d).copied().unwrap_or(0)));
        if any_viable {
            return;
        }
        p.retries += 1;
        p.replier = REPLIER_ALL;
        p.broadcast = true;
        ctx.metrics().incr("client.ro_retries");
        ctx.metrics().incr("client.ro_split_retries");
        ctx.metrics().incr("client.retransmissions");
        ctx.count(Counter::RoRetries);
        ctx.count(Counter::Retransmissions);
        self.send_request(ctx);
    }

    /// Handles a BUSY pushback from a replica: back off with exponential
    /// delay plus deterministic jitter instead of retransmitting on the
    /// normal schedule, and under persistent pushback give up the
    /// optimistic read-only path (admission sheds read-only parking
    /// queues first, so the classic path is the one with headroom).
    fn handle_busy(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        busy: Busy,
        auth: &AuthTag,
    ) {
        if from >= self.cfg.n() || busy.client != self.id {
            return;
        }
        // Verify the point-to-point MAC — an unauthenticated BUSY would
        // let any network party stall arbitrary clients for free.
        let AuthTag::Mac(mac) = auth else { return };
        ctx.charge_kind(CostKind::Mac, self.cfg.cost.mac(16));
        let mut body_buf = Vec::new();
        Msg::Busy(busy).encode(&mut body_buf);
        let d = bft_crypto::digest(&body_buf);
        if !self.keychain.verify_from(from, d.as_bytes(), mac) {
            ctx.metrics().incr("client.bad_busy_auth");
            return;
        }
        let (rounds, salt) = {
            let Some(p) = &mut self.pending else { return };
            if busy.timestamp != p.timestamp || p.busy_rounds >= BUSY_ROUNDS_CAP {
                return;
            }
            p.busy_rounds += 1;
            ctx.metrics().incr("client.busy_received");
            if p.busy_rounds >= 2 && p.read_only {
                // Persistent pushback: fall back from the optimistic
                // one-round read to classic ordering.
                p.read_only = false;
                p.replier = REPLIER_ALL;
                ctx.metrics().incr("client.busy_ro_fallbacks");
                ctx.count(Counter::RoFallbacks);
            }
            (p.busy_rounds, p.timestamp)
        };
        let max = self.cfg.client_retry_timeout_max_ns;
        let hint = busy.retry_after_ns.clamp(1, max);
        let backoff = (hint << (rounds - 1).min(4)).min(max);
        let delay = backoff + self.jitter(salt ^ (u64::from(rounds) << 40), backoff / 4 + 1);
        if let Some(t) = self.retry_timer.take() {
            ctx.cancel_timer(t);
        }
        self.retry_timer = Some(ctx.set_timer(delay, TIMER_RETRY));
    }

    fn on_retry_timer(&mut self, ctx: &mut Context<'_, Packet>) {
        self.retry_timer = None;
        let budget = self.cfg.client_retry_budget;
        let over = {
            let Some(p) = &mut self.pending else { return };
            p.retries += 1;
            p.broadcast = true;
            // Each honored BUSY extends the allowance by one round:
            // backing off on request is cooperation, not starvation.
            budget > 0 && !p.budget_flagged && p.retries > budget + p.busy_rounds
        };
        if over {
            // The budget is an observability boundary, not a liveness
            // one: flag the op as starved (once) and keep retrying.
            self.starved_ops += 1;
            ctx.metrics().incr("client.retry_budget_exhausted");
            ctx.count(Counter::RetryBudgetExhausted);
        }
        let Some(p) = &mut self.pending else { return };
        if over {
            p.budget_flagged = true;
        }
        // With read leases, a timed-out read retries read-only first:
        // a write burst that held replies back lifts within a lease
        // revocation round, and falling straight back to read-write
        // would forfeit the one-round path exactly when it matters.
        // Every replica answers the retry (`REPLIER_ALL`), so one
        // recovering or slow replica cannot starve the 2f+1 match.
        // After two read-only retries the usual fallback applies — a
        // dead primary stops granting leases, and only the read-write
        // path (whose pending requests arm the view-change timer) can
        // then re-elect.
        if p.read_only && self.cfg.read_leases && p.retries <= 2 {
            p.replier = REPLIER_ALL;
            ctx.metrics().incr("client.ro_retries");
            ctx.metrics().incr("client.retransmissions");
            ctx.count(Counter::RoRetries);
            ctx.count(Counter::Retransmissions);
            self.send_request(ctx);
            return;
        }
        // A timed-out read-only operation is retransmitted as a regular
        // read-write request (Section 3.1). Replies already collected stay
        // valid — they are matched by timestamp and result digest. This
        // fallback is what keeps reads live when a recovering replica
        // withholds its tentative reply and the remaining matches cannot
        // reach 2f+1 (arXiv:2107.11144).
        if p.read_only {
            ctx.metrics().incr("client.ro_fallbacks");
            ctx.count(Counter::RoFallbacks);
        }
        p.read_only = false;
        p.replier = REPLIER_ALL;
        ctx.metrics().incr("client.retransmissions");
        ctx.count(Counter::Retransmissions);
        self.send_request(ctx);
    }

    /// Arms the fault pacing timer if the behavior needs one and none is
    /// outstanding. Called on every event so `set_behavior` (which has no
    /// simulation context) takes effect at the next event the client
    /// processes.
    fn ensure_fault_timer(&mut self, ctx: &mut Context<'_, Packet>) {
        if self.fault_timer_armed {
            return;
        }
        let Some(interval) = self.behavior.interval_ns() else {
            return;
        };
        self.fault_timer_armed = true;
        ctx.set_timer(interval, TIMER_FAULT);
    }

    /// One tick of the configured misbehavior. Does nothing (and stops
    /// re-arming) once the behavior is back to `Correct`.
    fn on_fault_tick(&mut self, ctx: &mut Context<'_, Packet>) {
        match self.behavior {
            ClientBehavior::Correct => {}
            ClientBehavior::Flood { .. } => {
                // Abandon the outstanding op and fire a fresh one: an
                // open-loop firehose that keeps timestamps monotone, so
                // the reply cache stays coherent and the final flood op
                // completes normally once the behavior is restored —
                // which re-enters the driver's closed loop.
                if self.pending.take().is_some() {
                    if let Some(t) = self.retry_timer.take() {
                        ctx.cancel_timer(t);
                    }
                    ctx.metrics().incr("client.flood_abandoned");
                }
                ctx.metrics().incr("client.flood_requests");
                self.submit_inner(ctx, vec![1], false);
            }
            ClientBehavior::Replay { .. } => {
                if self.pending.is_some() {
                    ctx.metrics().incr("client.replayed_requests");
                    self.send_request(ctx);
                }
            }
            ClientBehavior::Malformed { .. } => {
                // A request whose every MAC is corrupt: pure
                // verification-cost pressure. The timestamp is past the
                // reply cache but never reserved via `self.ts`, so no
                // real op is ever shadowed by it.
                ctx.metrics().incr("client.malformed_requests");
                let req = Request {
                    client: self.id,
                    timestamp: self.ts + 1,
                    op: vec![1],
                    read_only: false,
                    replier: REPLIER_ALL,
                    auth: AuthTag::None,
                };
                let d = req.digest();
                let mut auth = self.keychain.authenticate(d.as_bytes());
                for (_, mac) in &mut auth.entries {
                    mac.tag[0] ^= 0xff;
                }
                let req = Request {
                    auth: AuthTag::Vector(auth),
                    ..req
                };
                let packet = Packet::unauthenticated(Msg::Request(req));
                let wire = packet.wire_bytes();
                ctx.charge_kind(CostKind::Net, self.cfg.cost.send(wire));
                ctx.count_sent(packet.body.tag());
                let all: Vec<NodeId> = (0..self.cfg.n()).collect();
                ctx.multicast(&all, packet, wire);
            }
        }
        self.ensure_fault_timer(ctx);
    }
}

/// What a [`ClientDriver`] can do: submit operations, set timers, read the
/// clock and metrics.
pub struct ClientApi<'a, 'b> {
    core: &'a mut ClientCore,
    ctx: &'a mut Context<'b, Packet>,
}

impl ClientApi<'_, '_> {
    /// Submits an operation. `read_only` requests the single-round-trip
    /// path (honored only when the optimization is enabled and the service
    /// agrees the operation is read-only).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already outstanding (clients are
    /// closed-loop).
    pub fn submit(&mut self, op: Vec<u8>, read_only: bool) {
        self.core.submit_inner(self.ctx, op, read_only);
    }

    /// True if an operation is in flight.
    pub fn busy(&self) -> bool {
        self.core.pending.is_some()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// This client's principal id.
    pub fn client_id(&self) -> ClientId {
        self.core.id
    }

    /// The protocol configuration.
    pub fn config(&self) -> &Config {
        &self.core.cfg
    }

    /// Sets a driver timer; it arrives at [`ClientDriver::on_timer`].
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.ctx.set_timer(delay_ns, DRIVER_TOKEN_BASE + token);
    }

    /// Charges simulated CPU time (client-side computation between
    /// operations, which the paper notes reduces relative overhead).
    pub fn charge(&mut self, ns: u64) {
        self.ctx.charge(ns);
    }

    /// Shared metrics.
    pub fn metrics(&mut self) -> &mut bft_sim::Metrics {
        self.ctx.metrics()
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }
}

/// A BFT client node: protocol core plus an application driver.
pub struct Client<D: ClientDriver> {
    core: ClientCore,
    driver: D,
}

impl<D: ClientDriver> Client<D> {
    /// Creates a client with principal id `id` (which must equal the node
    /// id it is registered under, and be `>= n`).
    pub fn new(id: ClientId, cfg: Config, driver: D) -> Client<D> {
        Client {
            core: ClientCore::new(id, cfg),
            driver,
        }
    }

    /// Completed-operation count.
    pub fn completed_ops(&self) -> u64 {
        self.core.completed_ops
    }

    /// True if an operation is currently in flight.
    pub fn busy(&self) -> bool {
        self.core.pending.is_some()
    }

    /// Takes the accumulated invoke/complete events, leaving the buffer
    /// empty. The chaos linearizability checker drains this after every
    /// simulation event.
    pub fn drain_audit(&mut self) -> Vec<OpEvent> {
        std::mem::take(&mut self.core.audit)
    }

    /// Overrides the client's behavior (chaos fault injection). The
    /// pacing timer arms on the next event this client processes — the
    /// chaos harness injects a no-op message right after to bound that.
    pub fn set_behavior(&mut self, behavior: ClientBehavior) {
        self.core.behavior = behavior;
    }

    /// The current (possibly faulty) behavior.
    pub fn behavior(&self) -> ClientBehavior {
        self.core.behavior
    }

    /// Operations whose bounded retry budget ran out, counted once per
    /// operation. The chaos `ClientStarvation` invariant watches this on
    /// honest clients.
    pub fn starvation_events(&self) -> u64 {
        self.core.starved_ops
    }

    /// Access to the driver (e.g. to read workload statistics).
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Mutable access to the driver.
    pub fn driver_mut(&mut self) -> &mut D {
        &mut self.driver
    }
}

impl<D: ClientDriver> Node<Packet> for Client<D> {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        assert_eq!(
            ctx.id(),
            self.core.id,
            "client node id must equal client id"
        );
        let mut api = ClientApi {
            core: &mut self.core,
            ctx,
        };
        self.driver.on_start(&mut api);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: NodeId,
        packet: Packet,
        wire: usize,
    ) {
        ctx.charge_kind(CostKind::Net, self.core.cfg.cost.recv(wire));
        ctx.count_received(packet.body.tag());
        self.core.ensure_fault_timer(ctx);
        // Exhaustive over Msg (lint rule `catch-all`): a client consumes
        // only REPLY and BUSY; every replica-to-replica variant is named
        // so adding a message type forces an explicit decision here.
        let reply = match packet.body {
            Msg::Reply(reply) => reply,
            Msg::Busy(busy) => {
                self.core.handle_busy(ctx, from, busy, &packet.auth);
                return;
            }
            Msg::Request(_)
            | Msg::PrePrepare(_)
            | Msg::Prepare(_)
            | Msg::Commit(_)
            | Msg::Checkpoint(_)
            | Msg::ViewChange(_)
            | Msg::NewView(_)
            | Msg::FetchState(_)
            | Msg::StateMeta(_)
            | Msg::FetchParts(_)
            | Msg::PartData(_)
            | Msg::FetchBatch(_)
            | Msg::BatchData(_)
            | Msg::FetchRequests(_)
            | Msg::RequestData(_)
            | Msg::Status(_)
            | Msg::CommittedBatch(_)
            | Msg::NewKey(_)
            | Msg::Recover(_)
            | Msg::RecoverAttest(_)
            | Msg::Lease(_)
            | Msg::LeaseRenew(_)
            | Msg::LeaseRevoke(_) => return,
        };
        let body_len = wire.saturating_sub(packet.auth.wire_bytes());
        if let Some((result, latency)) =
            self.core
                .handle_reply(ctx, from, reply, &packet.auth, body_len)
        {
            let mut api = ClientApi {
                core: &mut self.core,
                ctx,
            };
            self.driver.on_complete(&mut api, &result, latency);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        if token == TIMER_RETRY {
            self.core.on_retry_timer(ctx);
        } else if token == TIMER_FAULT {
            self.core.fault_timer_armed = false;
            self.core.on_fault_tick(ctx);
        } else if token >= DRIVER_TOKEN_BASE {
            let mut api = ClientApi {
                core: &mut self.core,
                ctx,
            };
            self.driver.on_timer(&mut api, token - DRIVER_TOKEN_BASE);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<D: ClientDriver> std::fmt::Debug for Client<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.core.id)
            .field("ts", &self.core.ts)
            .field("busy", &self.core.pending.is_some())
            .field("completed", &self.core.completed_ops)
            .finish()
    }
}
