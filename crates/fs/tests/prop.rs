//! Property-based tests for the filesystem state machine: determinism,
//! rollback as a perfect inverse, snapshot/restore fidelity, and agreement
//! with a naive reference model.

use bft_fs::ops::{Fh, NfsOp, NfsResult, ROOT_FH};
use bft_fs::state::{DataMode, FsState};
use proptest::prelude::*;

/// A workload step over a small namespace (8 names, depth ≤ 2).
#[derive(Debug, Clone)]
enum FsStep {
    Create(u8),
    Mkdir(u8),
    Write(u8, u16, Vec<u8>),
    Read(u8, u16, u16),
    Remove(u8),
    Rmdir(u8),
    Truncate(u8, u16),
    Rename(u8, u8),
    Link(u8, u8),
}

fn arb_step() -> impl Strategy<Value = FsStep> {
    prop_oneof![
        (0u8..8).prop_map(FsStep::Create),
        (0u8..8).prop_map(FsStep::Mkdir),
        (
            0u8..8,
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(n, off, data)| FsStep::Write(n, off % 256, data)),
        (0u8..8, any::<u16>(), any::<u16>()).prop_map(|(n, off, len)| FsStep::Read(
            n,
            off % 256,
            len % 128
        )),
        (0u8..8).prop_map(FsStep::Remove),
        (0u8..8).prop_map(FsStep::Rmdir),
        (0u8..8, any::<u16>()).prop_map(|(n, sz)| FsStep::Truncate(n, sz % 512)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| FsStep::Rename(a, b)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| FsStep::Link(a, b)),
    ]
}

fn name(n: u8) -> String {
    format!("n{n}")
}

/// Translates a step to an op against the root directory, resolving the
/// name through the live state (so ops reference real handles when the
/// name exists).
fn to_op(fs: &FsState, step: &FsStep) -> NfsOp {
    let resolve = |n: u8| -> Fh {
        match fs.query(&NfsOp::Lookup {
            dir: ROOT_FH,
            name: name(n),
        }) {
            NfsResult::Handle(a) => a.fh,
            _ => 0xdead, // stale handle: ops must fail cleanly
        }
    };
    match step {
        FsStep::Create(n) => NfsOp::Create {
            dir: ROOT_FH,
            name: name(*n),
        },
        FsStep::Mkdir(n) => NfsOp::Mkdir {
            dir: ROOT_FH,
            name: name(*n),
        },
        FsStep::Write(n, off, data) => NfsOp::Write {
            fh: resolve(*n),
            offset: *off as u64,
            data: data.clone(),
        },
        FsStep::Read(n, off, len) => NfsOp::Read {
            fh: resolve(*n),
            offset: *off as u64,
            count: *len as u32,
        },
        FsStep::Remove(n) => NfsOp::Remove {
            dir: ROOT_FH,
            name: name(*n),
        },
        FsStep::Rmdir(n) => NfsOp::Rmdir {
            dir: ROOT_FH,
            name: name(*n),
        },
        FsStep::Truncate(n, sz) => NfsOp::SetAttr {
            fh: resolve(*n),
            size: Some(*sz as u64),
        },
        FsStep::Rename(a, b) => NfsOp::Rename {
            from_dir: ROOT_FH,
            from_name: name(*a),
            to_dir: ROOT_FH,
            to_name: name(*b),
        },
        FsStep::Link(a, b) => NfsOp::Link {
            fh: resolve(*a),
            dir: ROOT_FH,
            name: name(*b),
        },
    }
}

proptest! {
    /// Two instances fed the same steps agree on every result and on the
    /// state digest (replica determinism).
    #[test]
    fn determinism(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let mut a = FsState::new(DataMode::Store);
        let mut b = FsState::new(DataMode::Store);
        for step in &steps {
            let op_a = to_op(&a, step);
            let op_b = to_op(&b, step);
            prop_assert_eq!(&op_a, &op_b);
            let ra = a.apply(&op_a);
            let rb = b.apply(&op_b);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.state_digest(), b.state_digest());
    }

    /// Rolling back all uncommitted operations restores the exact digest.
    #[test]
    fn rollback_is_a_perfect_inverse(
        committed in proptest::collection::vec(arb_step(), 0..20),
        speculative in proptest::collection::vec(arb_step(), 0..20),
    ) {
        let mut fs = FsState::new(DataMode::Store);
        for step in &committed {
            let op = to_op(&fs, step);
            fs.apply(&op);
        }
        fs.commit_prefix(committed.len());
        let checkpoint = fs.state_digest();
        let bytes = fs.data_bytes();
        for step in &speculative {
            let op = to_op(&fs, step);
            fs.apply(&op);
        }
        fs.rollback_suffix(speculative.len());
        prop_assert_eq!(fs.state_digest(), checkpoint);
        prop_assert_eq!(fs.data_bytes(), bytes);
        prop_assert_eq!(fs.uncommitted_ops(), 0);
    }

    /// Snapshot/restore reproduces the digest and observable contents.
    #[test]
    fn snapshot_restore_fidelity(steps in proptest::collection::vec(arb_step(), 0..40)) {
        let mut fs = FsState::new(DataMode::Store);
        for step in &steps {
            let op = to_op(&fs, step);
            fs.apply(&op);
        }
        let snap = fs.snapshot();
        let mut restored = FsState::new(DataMode::Store);
        restored.restore(&snap).expect("restore");
        prop_assert_eq!(restored.state_digest(), fs.state_digest());
        prop_assert_eq!(restored.inode_count(), fs.inode_count());
        // Every file reads back identically.
        if let NfsResult::Entries(entries) = fs.query(&NfsOp::ReadDir { dir: ROOT_FH }) {
            for (_, fh) in entries {
                let read = NfsOp::Read { fh, offset: 0, count: 1024 };
                prop_assert_eq!(fs.query(&read), restored.query(&read));
            }
        }
    }

    /// File contents match a naive byte-array reference model.
    #[test]
    fn contents_match_reference(
        writes in proptest::collection::vec(
            (any::<u16>(), proptest::collection::vec(any::<u8>(), 1..48)),
            1..20,
        ),
    ) {
        let mut fs = FsState::new(DataMode::Store);
        let fh = match fs.apply(&NfsOp::Create { dir: ROOT_FH, name: "f".into() }) {
            NfsResult::Handle(a) => a.fh,
            other => return Err(TestCaseError::fail(format!("create failed: {other:?}"))),
        };
        let mut reference: Vec<u8> = Vec::new();
        for (off, data) in &writes {
            let off = (*off % 512) as usize;
            if reference.len() < off + data.len() {
                reference.resize(off + data.len(), 0);
            }
            reference[off..off + data.len()].copy_from_slice(data);
            fs.apply(&NfsOp::Write { fh, offset: off as u64, data: data.clone() });
        }
        match fs.query(&NfsOp::Read { fh, offset: 0, count: 4096 }) {
            NfsResult::Data { data, attr } => {
                prop_assert_eq!(&data, &reference);
                prop_assert_eq!(attr.size, reference.len() as u64);
            }
            other => return Err(TestCaseError::fail(format!("read failed: {other:?}"))),
        }
    }

    /// Store and MetadataOnly modes agree on every attribute-visible fact
    /// (sizes, namespace, errors) for the same step sequence.
    #[test]
    fn metadata_mode_agrees_on_attributes(steps in proptest::collection::vec(arb_step(), 0..50)) {
        let mut full = FsState::new(DataMode::Store);
        let mut meta = FsState::new(DataMode::MetadataOnly);
        for step in &steps {
            let op_full = to_op(&full, step);
            let op_meta = to_op(&meta, step);
            prop_assert_eq!(&op_full, &op_meta, "namespaces diverged");
            let rf = full.apply(&op_full);
            let rm = meta.apply(&op_meta);
            prop_assert_eq!(rf.is_err(), rm.is_err());
            if let (Some(af), Some(am)) = (rf.attr(), rm.attr()) {
                prop_assert_eq!(af.size, am.size);
                prop_assert_eq!(af.kind, am.kind);
                prop_assert_eq!(af.fh, am.fh);
            }
        }
        prop_assert_eq!(full.inode_count(), meta.inode_count());
        prop_assert_eq!(full.data_bytes(), meta.data_bytes());
    }
}
