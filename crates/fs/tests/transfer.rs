//! Partial state transfer over the partitioned filesystem: a replica
//! that falls behind fetches only the partitions that changed while it
//! was cut off, transferring far fewer bytes than a full snapshot.

use bft_core::prelude::*;
use bft_core::wire::Wire;
use bft_fs::ops::{NfsOp, ROOT_FH};
use bft_fs::service::FsService;

/// Submits a fixed script of encoded NFS operations, one at a time.
struct ScriptDriver {
    ops: Vec<Vec<u8>>,
    next: usize,
}

impl ScriptDriver {
    fn new(ops: Vec<NfsOp>) -> ScriptDriver {
        ScriptDriver {
            ops: ops.iter().map(Wire::to_bytes).collect(),
            next: 0,
        }
    }

    fn done(&self) -> bool {
        self.next == self.ops.len()
    }
}

impl ClientDriver for ScriptDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        if let Some(op) = self.ops.first() {
            self.next = 1;
            api.submit(op.clone(), false);
        }
    }

    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _result: &[u8], _lat: u64) {
        if let Some(op) = self.ops.get(self.next) {
            self.next += 1;
            api.submit(op.clone(), false);
        }
    }
}

#[test]
fn lagging_replica_recovers_via_partial_state_transfer() {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 8;
    cfg.log_window = 16;
    let mut cluster = Cluster::builder(cfg)
        .seed(77)
        .net(NetConfig::SWITCHED_100MBPS)
        .build(|_| FsService::in_memory());

    // Phase 1: build up a populated filesystem on all four replicas.
    let creates: Vec<NfsOp> = (0..40)
        .map(|i| NfsOp::Create {
            dir: ROOT_FH,
            name: format!("f{i}"),
        })
        .collect();
    let c1 = cluster.add_client(ScriptDriver::new(creates));
    cluster.run_for(dur::secs(5));
    assert!(cluster.client::<ScriptDriver>(c1).driver().done());

    // Phase 2: cut replica 3 off and mutate a single file (handle 2 is
    // the first created file) for long enough that replica 3 falls out
    // of the log window and must state-transfer when it heals.
    cluster.sim.network_mut().isolate(3, 4);
    let writes: Vec<NfsOp> = (0..64)
        .map(|i| NfsOp::Write {
            fh: 2,
            offset: 0,
            data: vec![i as u8; 256],
        })
        .collect();
    let c2 = cluster.add_client(ScriptDriver::new(writes));
    cluster.run_for(dur::secs(8));
    assert!(cluster.client::<ScriptDriver>(c2).driver().done());
    let lagging = cluster.replica::<FsService>(3).last_executed();

    // Phase 3: heal and let replica 3 catch up.
    cluster.sim.network_mut().heal_node(3);
    cluster.run_for(dur::secs(10));
    let caught_up = cluster.replica::<FsService>(3).last_executed();
    assert!(
        caught_up > lagging,
        "replica 3 stuck at {lagging} -> {caught_up}"
    );
    assert_eq!(
        cluster.replica::<FsService>(3).service().state_digest(),
        cluster.replica::<FsService>(0).service().state_digest(),
        "replica 3 must converge to the group's state"
    );

    let metrics = cluster.sim.metrics();
    assert!(
        metrics.counter("replica.state_transfers_completed") > 0,
        "state transfer should have run"
    );
    // Only a handful of partitions changed while replica 3 was cut off
    // (the written file, the metadata partition, the reply cache); the
    // other partitions of the 40-file tree must be skipped, and the
    // bytes on the wire must undercut a full snapshot.
    let skipped = metrics.counter("replica.state_parts_skipped");
    assert!(skipped > 50, "only {skipped} partitions were skipped");
    let fetched = metrics.counter("replica.state_bytes_fetched");
    let full = cluster.replica::<FsService>(0).service().snapshot().len() as u64;
    assert!(fetched > 0, "some partitions must still be transferred");
    assert!(
        fetched < full,
        "partial transfer ({fetched} B) must undercut a full snapshot ({full} B)"
    );
}
