//! `FsService`: the BFS file service as a replicated state machine.
//!
//! Operations arrive as encoded [`NfsOp`]s and results leave as encoded
//! [`NfsResult`]s; the BFT library treats both as opaque bytes. The same
//! type also backs the unreplicated baselines (NO-REP, NFS-STD) through
//! the `direct` module of `bft-workloads`.

use crate::disk::{FsCostModel, ServerMode};
use crate::ops::{NfsOp, NfsResult};
use crate::state::{DataMode, FsState, FS_PARTITIONS};
use bft_core::service::{RestoreError, Service};
use bft_core::types::ClientId;
use bft_core::wire::Wire;
use bft_crypto::md5::Digest;

/// The BFS file service.
#[derive(Debug, Clone)]
pub struct FsService {
    state: FsState,
    cost: FsCostModel,
}

impl FsService {
    /// Creates the service with the given data mode and cost model.
    pub fn new(data_mode: DataMode, cost: FsCostModel) -> FsService {
        FsService {
            state: FsState::new(data_mode),
            cost,
        }
    }

    /// A test-friendly instance: real bytes, BFS cost model.
    pub fn in_memory() -> FsService {
        FsService::new(DataMode::Store, FsCostModel::new(ServerMode::Bfs))
    }

    /// A benchmark instance: metadata only, chosen server mode.
    pub fn for_benchmarks(mode: ServerMode) -> FsService {
        FsService::new(DataMode::MetadataOnly, FsCostModel::new(mode))
    }

    /// Read access to the filesystem state.
    pub fn state(&self) -> &FsState {
        &self.state
    }

    /// The cost model.
    pub fn cost_model(&self) -> &FsCostModel {
        &self.cost
    }

    /// Decodes, applies, and re-encodes an operation (shared with the
    /// unreplicated baselines).
    pub fn apply_encoded(&mut self, op: &[u8]) -> Vec<u8> {
        let result = match NfsOp::from_bytes(op) {
            Ok(op) => self.state.apply(&op),
            Err(_) => NfsResult::Err(crate::ops::NfsError::Inval),
        };
        result.to_bytes()
    }

    /// Simulated server time (CPU + synchronous disk) for an encoded
    /// operation, computed deterministically from the current state.
    pub fn op_cost_ns(&self, op: &[u8], result: &[u8]) -> u64 {
        let Ok(op) = NfsOp::from_bytes(op) else {
            return self.cost.base_cpu_ns;
        };
        let data_bytes = match &op {
            NfsOp::Write { data, .. } => data.len(),
            NfsOp::Read { .. } => result.len().saturating_sub(40),
            _ => 0,
        };
        let is_write = matches!(op, NfsOp::Write { .. });
        let cpu = self.cost.cpu_ns(data_bytes);
        let disk = self.cost.sync_disk_ns(
            op.is_metadata_write(),
            is_write,
            data_bytes,
            self.state.data_bytes(),
            // The logical clock is a deterministic per-replica op index.
            self.state.state_digest().short() ^ self.state.data_bytes(),
        );
        cpu + disk
    }
}

impl Service for FsService {
    fn execute(&mut self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        self.apply_encoded(op)
    }

    fn execute_read_only(&self, _client: ClientId, op: &[u8]) -> Vec<u8> {
        let result = match NfsOp::from_bytes(op) {
            Ok(op) if op.is_read_only() => self.state.query(&op),
            _ => NfsResult::Err(crate::ops::NfsError::Inval),
        };
        result.to_bytes()
    }

    fn is_read_only(&self, op: &[u8]) -> bool {
        NfsOp::from_bytes(op).is_ok_and(|op| op.is_read_only())
    }

    fn exec_cost_ns(&self, op: &[u8], result: &[u8]) -> u64 {
        self.op_cost_ns(op, result)
    }

    fn state_digest(&self) -> Digest {
        self.state.state_digest()
    }

    fn snapshot(&self) -> Vec<u8> {
        self.state.snapshot()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), RestoreError> {
        self.state
            .restore(snapshot)
            .map_err(|e| RestoreError(e.to_string()))
    }

    fn commit_prefix(&mut self, ops: usize) {
        self.state.commit_prefix(ops);
    }

    fn rollback_suffix(&mut self, ops: usize) {
        self.state.rollback_suffix(ops);
    }

    fn partition_count(&self) -> u32 {
        FS_PARTITIONS
    }

    fn partition_digest(&self, p: u32) -> Digest {
        self.state.partition_digest(p)
    }

    fn partition_snapshot(&self, p: u32) -> Vec<u8> {
        self.state.encode_partition(p)
    }

    fn partition_size(&self, p: u32) -> usize {
        self.state.partition_byte_size(p)
    }

    fn take_dirty_partitions(&mut self) -> Vec<u32> {
        self.state.take_dirty_partitions()
    }

    fn restore_partition(
        &mut self,
        p: u32,
        bytes: &[u8],
        expect: &Digest,
    ) -> Result<(), RestoreError> {
        self.state.restore_partition(p, bytes, expect)
    }

    fn retain_checkpoint(&mut self, token: u64) -> bool {
        self.state.retain_checkpoint(token);
        true
    }

    fn retained_partition(&self, token: u64, p: u32) -> Option<Vec<u8>> {
        self.state.retained_partition(token, p)
    }

    fn release_checkpoints_below(&mut self, token: u64) {
        self.state.release_checkpoints_below(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Fh, ROOT_FH};

    fn op_bytes(op: &NfsOp) -> Vec<u8> {
        op.to_bytes()
    }

    fn result_of(bytes: &[u8]) -> NfsResult {
        NfsResult::from_bytes(bytes).expect("valid result encoding")
    }

    #[test]
    fn execute_roundtrips_through_bytes() {
        let mut svc = FsService::in_memory();
        let res = svc.execute(
            9,
            &op_bytes(&NfsOp::Create {
                dir: ROOT_FH,
                name: "f".into(),
            }),
        );
        let fh: Fh = match result_of(&res) {
            NfsResult::Handle(a) => a.fh,
            other => panic!("unexpected {other:?}"),
        };
        let res = svc.execute(
            9,
            &op_bytes(&NfsOp::Write {
                fh,
                offset: 0,
                data: vec![3; 10],
            }),
        );
        assert!(!result_of(&res).is_err());
        let res = svc.execute_read_only(
            9,
            &op_bytes(&NfsOp::Read {
                fh,
                offset: 0,
                count: 10,
            }),
        );
        match result_of(&res) {
            NfsResult::Data { data, .. } => assert_eq!(data, vec![3; 10]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_ops_fail_gracefully() {
        let mut svc = FsService::in_memory();
        let res = svc.execute(1, &[0xff, 0xff]);
        assert!(result_of(&res).is_err());
        assert!(!svc.is_read_only(&[0xff]));
    }

    #[test]
    fn write_misclassified_as_read_only_is_refused() {
        // A faulty client cannot mutate state through the read-only path.
        let svc = FsService::in_memory();
        let digest_before = svc.state_digest();
        let res = svc.execute_read_only(
            1,
            &op_bytes(&NfsOp::Create {
                dir: ROOT_FH,
                name: "evil".into(),
            }),
        );
        assert!(result_of(&res).is_err());
        assert_eq!(svc.state_digest(), digest_before);
    }

    #[test]
    fn rollback_through_service_trait() {
        let mut svc = FsService::in_memory();
        let d0 = svc.state_digest();
        svc.execute(
            1,
            &op_bytes(&NfsOp::Mkdir {
                dir: ROOT_FH,
                name: "d".into(),
            }),
        );
        svc.rollback_suffix(1);
        assert_eq!(svc.state_digest(), d0);
    }

    #[test]
    fn snapshot_restore_through_service_trait() {
        let mut svc = FsService::in_memory();
        svc.execute(
            1,
            &op_bytes(&NfsOp::Mkdir {
                dir: ROOT_FH,
                name: "d".into(),
            }),
        );
        let snap = svc.snapshot();
        let d = svc.state_digest();
        let mut other = FsService::in_memory();
        other.restore(&snap).expect("restore");
        assert_eq!(other.state_digest(), d);
        assert!(other.restore(&[1]).is_err());
    }

    #[test]
    fn cost_grows_with_data_size() {
        let mut svc = FsService::in_memory();
        let res = svc.execute(
            1,
            &op_bytes(&NfsOp::Create {
                dir: ROOT_FH,
                name: "f".into(),
            }),
        );
        let fh = result_of(&res).handle().expect("created");
        let small = NfsOp::Write {
            fh,
            offset: 0,
            data: vec![0; 64],
        };
        let big = NfsOp::Write {
            fh,
            offset: 0,
            data: vec![0; 8192],
        };
        assert!(svc.op_cost_ns(&op_bytes(&big), &[]) > svc.op_cost_ns(&op_bytes(&small), &[]));
    }

    #[test]
    fn deterministic_across_instances() {
        let script = [
            NfsOp::Mkdir {
                dir: ROOT_FH,
                name: "a".into(),
            },
            NfsOp::Create {
                dir: 2,
                name: "f".into(),
            },
            NfsOp::Write {
                fh: 3,
                offset: 0,
                data: vec![7; 128],
            },
        ];
        let mut a = FsService::in_memory();
        let mut b = FsService::in_memory();
        for op in &script {
            let ra = a.execute(1, &op_bytes(op));
            let rb = b.execute(1, &op_bytes(op));
            assert_eq!(ra, rb);
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
