#![warn(missing_docs)]

//! BFS — the Byzantine-fault-tolerant NFS file service from the paper —
//! plus the pieces needed to reproduce its evaluation.
//!
//! - [`ops`]: the NFS-V2-style operation/result vocabulary and its wire
//!   encoding;
//! - [`state`]: the deterministic filesystem state machine with undo,
//!   incremental state digests, and snapshot/restore;
//! - [`service`]: [`FsService`], plugging the state machine into the BFT
//!   library's [`bft_core::Service`] interface (and the unreplicated
//!   baselines);
//! - [`client`]: a model of the Linux kernel NFS client (lookup cache,
//!   attribute cache, write-back data cache, 3 KB transfers);
//! - [`disk`]: the disk and buffer-cache cost model distinguishing BFS,
//!   NO-REP, and NFS-STD.
//!
//! # Example
//!
//! ```
//! use bft_fs::ops::{NfsOp, NfsResult, ROOT_FH};
//! use bft_fs::service::FsService;
//! use bft_core::wire::Wire;
//!
//! let mut bfs = FsService::in_memory();
//! let create = NfsOp::Create { dir: ROOT_FH, name: "readme".into() };
//! let result = bfs.apply_encoded(&create.to_bytes());
//! let decoded = NfsResult::from_bytes(&result)?;
//! assert!(decoded.handle().is_some());
//! # Ok::<(), bft_core::wire::WireError>(())
//! ```

pub mod client;
pub mod disk;
pub mod ops;
pub mod service;
pub mod state;

pub use client::{ClientStats, FileAction, NfsClientConfig, NfsClientModel, Step};
pub use disk::{DiskModel, FsCostModel, ServerMode};
pub use ops::{Fattr, Fh, FileKind, NfsError, NfsOp, NfsResult, ROOT_FH};
pub use service::FsService;
pub use state::{DataMode, FsState};
