//! The NFS-V2-style operation vocabulary of BFS.
//!
//! BFS exports the NFS V2 protocol surface; operations and results are
//! serialized with the `bft-core` wire codec so they can travel as opaque
//! BFT operations (replicated path) or inside plain datagrams (the NO-REP
//! and NFS-STD baselines).

use bft_core::wire::{Reader, Wire, WireError};

/// A file handle. Handle 1 is always the root directory.
pub type Fh = u64;

/// The root directory handle.
pub const ROOT_FH: Fh = 1;

/// File type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Symbolic link.
    Symlink,
}

impl Wire for FileKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            FileKind::File => 0,
            FileKind::Dir => 1,
            FileKind::Symlink => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(FileKind::File),
            1 => Ok(FileKind::Dir),
            2 => Ok(FileKind::Symlink),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// File attributes (the subset BFS maintains; there is deliberately no
/// time-last-accessed, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fattr {
    /// The file's handle.
    pub fh: Fh,
    /// File type.
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
    /// Logical modification time (a deterministic operation counter, not
    /// wall-clock, so replicas stay identical).
    pub mtime: u64,
}

impl Wire for Fattr {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.fh.encode(buf);
        self.kind.encode(buf);
        self.size.encode(buf);
        self.mtime.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Fattr {
            fh: u64::decode(r)?,
            kind: FileKind::decode(r)?,
            size: u64::decode(r)?,
            mtime: u64::decode(r)?,
        })
    }
}

fn encode_str(s: &str, buf: &mut Vec<u8>) {
    s.as_bytes().to_vec().encode(buf);
}

fn decode_str(r: &mut Reader<'_>) -> Result<String, WireError> {
    let bytes = Vec::<u8>::decode(r)?;
    String::from_utf8(bytes).map_err(|_| WireError::BadTag(0xfe))
}

/// An NFS operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsOp {
    /// Resolve `name` in directory `dir`.
    Lookup {
        /// Directory handle.
        dir: Fh,
        /// Entry name.
        name: String,
    },
    /// Fetch attributes.
    GetAttr {
        /// File handle.
        fh: Fh,
    },
    /// Set attributes (truncate to `size` when present).
    SetAttr {
        /// File handle.
        fh: Fh,
        /// New size, if truncating.
        size: Option<u64>,
    },
    /// Read `count` bytes at `offset`.
    Read {
        /// File handle.
        fh: Fh,
        /// Byte offset.
        offset: u64,
        /// Bytes wanted.
        count: u32,
    },
    /// Write `data` at `offset`.
    Write {
        /// File handle.
        fh: Fh,
        /// Byte offset.
        offset: u64,
        /// Data to write.
        data: Vec<u8>,
    },
    /// Create a regular file.
    Create {
        /// Parent directory.
        dir: Fh,
        /// New entry name.
        name: String,
    },
    /// Remove a regular file or symlink.
    Remove {
        /// Parent directory.
        dir: Fh,
        /// Entry name.
        name: String,
    },
    /// Rename an entry (possibly across directories).
    Rename {
        /// Source directory.
        from_dir: Fh,
        /// Source name.
        from_name: String,
        /// Destination directory.
        to_dir: Fh,
        /// Destination name.
        to_name: String,
    },
    /// Create a directory.
    Mkdir {
        /// Parent directory.
        dir: Fh,
        /// New directory name.
        name: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Parent directory.
        dir: Fh,
        /// Directory name.
        name: String,
    },
    /// List a directory.
    ReadDir {
        /// Directory handle.
        dir: Fh,
    },
    /// Create a symbolic link.
    Symlink {
        /// Parent directory.
        dir: Fh,
        /// Link name.
        name: String,
        /// Link target path.
        target: String,
    },
    /// Read a symbolic link's target.
    ReadLink {
        /// Symlink handle.
        fh: Fh,
    },
    /// Create a hard link to an existing file.
    Link {
        /// Handle of the existing file.
        fh: Fh,
        /// Directory for the new name.
        dir: Fh,
        /// The new name.
        name: String,
    },
}

impl NfsOp {
    /// True if the operation cannot modify filesystem state — eligible for
    /// the read-only optimization.
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            NfsOp::Lookup { .. }
                | NfsOp::GetAttr { .. }
                | NfsOp::Read { .. }
                | NfsOp::ReadDir { .. }
                | NfsOp::ReadLink { .. }
        )
    }

    /// True for operations that mutate namespace metadata (these are the
    /// ops the Linux NFS server must push to disk — or, incorrectly,
    /// doesn't).
    pub fn is_metadata_write(&self) -> bool {
        matches!(
            self,
            NfsOp::Create { .. }
                | NfsOp::Remove { .. }
                | NfsOp::Rename { .. }
                | NfsOp::Mkdir { .. }
                | NfsOp::Rmdir { .. }
                | NfsOp::Symlink { .. }
                | NfsOp::SetAttr { .. }
                | NfsOp::Link { .. }
        )
    }

    /// A short name for metrics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            NfsOp::Lookup { .. } => "lookup",
            NfsOp::GetAttr { .. } => "getattr",
            NfsOp::SetAttr { .. } => "setattr",
            NfsOp::Read { .. } => "read",
            NfsOp::Write { .. } => "write",
            NfsOp::Create { .. } => "create",
            NfsOp::Remove { .. } => "remove",
            NfsOp::Rename { .. } => "rename",
            NfsOp::Mkdir { .. } => "mkdir",
            NfsOp::Rmdir { .. } => "rmdir",
            NfsOp::ReadDir { .. } => "readdir",
            NfsOp::Symlink { .. } => "symlink",
            NfsOp::ReadLink { .. } => "readlink",
            NfsOp::Link { .. } => "link",
        }
    }
}

impl Wire for NfsOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            NfsOp::Lookup { dir, name } => {
                buf.push(0);
                dir.encode(buf);
                encode_str(name, buf);
            }
            NfsOp::GetAttr { fh } => {
                buf.push(1);
                fh.encode(buf);
            }
            NfsOp::SetAttr { fh, size } => {
                buf.push(2);
                fh.encode(buf);
                size.encode(buf);
            }
            NfsOp::Read { fh, offset, count } => {
                buf.push(3);
                fh.encode(buf);
                offset.encode(buf);
                count.encode(buf);
            }
            NfsOp::Write { fh, offset, data } => {
                buf.push(4);
                fh.encode(buf);
                offset.encode(buf);
                data.encode(buf);
            }
            NfsOp::Create { dir, name } => {
                buf.push(5);
                dir.encode(buf);
                encode_str(name, buf);
            }
            NfsOp::Remove { dir, name } => {
                buf.push(6);
                dir.encode(buf);
                encode_str(name, buf);
            }
            NfsOp::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => {
                buf.push(7);
                from_dir.encode(buf);
                encode_str(from_name, buf);
                to_dir.encode(buf);
                encode_str(to_name, buf);
            }
            NfsOp::Mkdir { dir, name } => {
                buf.push(8);
                dir.encode(buf);
                encode_str(name, buf);
            }
            NfsOp::Rmdir { dir, name } => {
                buf.push(9);
                dir.encode(buf);
                encode_str(name, buf);
            }
            NfsOp::ReadDir { dir } => {
                buf.push(10);
                dir.encode(buf);
            }
            NfsOp::Symlink { dir, name, target } => {
                buf.push(11);
                dir.encode(buf);
                encode_str(name, buf);
                encode_str(target, buf);
            }
            NfsOp::ReadLink { fh } => {
                buf.push(12);
                fh.encode(buf);
            }
            NfsOp::Link { fh, dir, name } => {
                buf.push(13);
                fh.encode(buf);
                dir.encode(buf);
                encode_str(name, buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => NfsOp::Lookup {
                dir: u64::decode(r)?,
                name: decode_str(r)?,
            },
            1 => NfsOp::GetAttr {
                fh: u64::decode(r)?,
            },
            2 => NfsOp::SetAttr {
                fh: u64::decode(r)?,
                size: Option::<u64>::decode(r)?,
            },
            3 => NfsOp::Read {
                fh: u64::decode(r)?,
                offset: u64::decode(r)?,
                count: u32::decode(r)?,
            },
            4 => NfsOp::Write {
                fh: u64::decode(r)?,
                offset: u64::decode(r)?,
                data: Vec::<u8>::decode(r)?,
            },
            5 => NfsOp::Create {
                dir: u64::decode(r)?,
                name: decode_str(r)?,
            },
            6 => NfsOp::Remove {
                dir: u64::decode(r)?,
                name: decode_str(r)?,
            },
            7 => NfsOp::Rename {
                from_dir: u64::decode(r)?,
                from_name: decode_str(r)?,
                to_dir: u64::decode(r)?,
                to_name: decode_str(r)?,
            },
            8 => NfsOp::Mkdir {
                dir: u64::decode(r)?,
                name: decode_str(r)?,
            },
            9 => NfsOp::Rmdir {
                dir: u64::decode(r)?,
                name: decode_str(r)?,
            },
            10 => NfsOp::ReadDir {
                dir: u64::decode(r)?,
            },
            11 => NfsOp::Symlink {
                dir: u64::decode(r)?,
                name: decode_str(r)?,
                target: decode_str(r)?,
            },
            12 => NfsOp::ReadLink {
                fh: u64::decode(r)?,
            },
            13 => NfsOp::Link {
                fh: u64::decode(r)?,
                dir: u64::decode(r)?,
                name: decode_str(r)?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// NFS error codes (the subset BFS produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfsError {
    /// No such file or directory.
    NoEnt,
    /// Entry already exists.
    Exists,
    /// Operand is not a directory.
    NotDir,
    /// Operand is a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Stale file handle.
    Stale,
    /// Invalid argument.
    Inval,
}

impl Wire for NfsError {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            NfsError::NoEnt => 0,
            NfsError::Exists => 1,
            NfsError::NotDir => 2,
            NfsError::IsDir => 3,
            NfsError::NotEmpty => 4,
            NfsError::Stale => 5,
            NfsError::Inval => 6,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => NfsError::NoEnt,
            1 => NfsError::Exists,
            2 => NfsError::NotDir,
            3 => NfsError::IsDir,
            4 => NfsError::NotEmpty,
            5 => NfsError::Stale,
            6 => NfsError::Inval,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NfsError::NoEnt => "no such file or directory",
            NfsError::Exists => "file exists",
            NfsError::NotDir => "not a directory",
            NfsError::IsDir => "is a directory",
            NfsError::NotEmpty => "directory not empty",
            NfsError::Stale => "stale file handle",
            NfsError::Inval => "invalid argument",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NfsError {}

/// An NFS operation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsResult {
    /// Attributes only (GetAttr, SetAttr, Write).
    Attr(Fattr),
    /// Handle + attributes (Lookup, Create, Mkdir, Symlink).
    Handle(Fattr),
    /// File data (Read).
    Data {
        /// The bytes read.
        data: Vec<u8>,
        /// Attributes after the read.
        attr: Fattr,
    },
    /// Success with nothing to return (Remove, Rename, Rmdir).
    Ok,
    /// Directory listing: (name, handle) pairs in name order.
    Entries(Vec<(String, Fh)>),
    /// Symlink target (ReadLink).
    Link(String),
    /// Failure.
    Err(NfsError),
}

impl NfsResult {
    /// True if this is an error result.
    pub fn is_err(&self) -> bool {
        matches!(self, NfsResult::Err(_))
    }

    /// Extracts the handle from a `Handle` result.
    pub fn handle(&self) -> Option<Fh> {
        match self {
            NfsResult::Handle(a) => Some(a.fh),
            _ => None,
        }
    }

    /// Extracts attributes if present.
    pub fn attr(&self) -> Option<&Fattr> {
        match self {
            NfsResult::Attr(a) | NfsResult::Handle(a) => Some(a),
            NfsResult::Data { attr, .. } => Some(attr),
            _ => None,
        }
    }
}

impl Wire for NfsResult {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            NfsResult::Attr(a) => {
                buf.push(0);
                a.encode(buf);
            }
            NfsResult::Handle(a) => {
                buf.push(1);
                a.encode(buf);
            }
            NfsResult::Data { data, attr } => {
                buf.push(2);
                data.encode(buf);
                attr.encode(buf);
            }
            NfsResult::Ok => buf.push(3),
            NfsResult::Entries(entries) => {
                buf.push(4);
                (entries.len() as u64).encode(buf);
                for (name, fh) in entries {
                    encode_str(name, buf);
                    fh.encode(buf);
                }
            }
            NfsResult::Link(target) => {
                buf.push(5);
                encode_str(target, buf);
            }
            NfsResult::Err(e) => {
                buf.push(6);
                e.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => NfsResult::Attr(Fattr::decode(r)?),
            1 => NfsResult::Handle(Fattr::decode(r)?),
            2 => NfsResult::Data {
                data: Vec::<u8>::decode(r)?,
                attr: Fattr::decode(r)?,
            },
            3 => NfsResult::Ok,
            4 => {
                let n = u64::decode(r)?;
                if n > 1_000_000 {
                    return Err(WireError::BadLength(n));
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push((decode_str(r)?, u64::decode(r)?));
                }
                NfsResult::Entries(entries)
            }
            5 => NfsResult::Link(decode_str(r)?),
            6 => NfsResult::Err(NfsError::decode(r)?),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: NfsOp) {
        let bytes = op.to_bytes();
        assert_eq!(NfsOp::from_bytes(&bytes).expect("decode"), op);
    }

    fn roundtrip_result(res: NfsResult) {
        let bytes = res.to_bytes();
        assert_eq!(NfsResult::from_bytes(&bytes).expect("decode"), res);
    }

    #[test]
    fn ops_roundtrip() {
        roundtrip(NfsOp::Lookup {
            dir: ROOT_FH,
            name: "src".into(),
        });
        roundtrip(NfsOp::GetAttr { fh: 2 });
        roundtrip(NfsOp::SetAttr {
            fh: 2,
            size: Some(0),
        });
        roundtrip(NfsOp::Read {
            fh: 2,
            offset: 4096,
            count: 3072,
        });
        roundtrip(NfsOp::Write {
            fh: 2,
            offset: 0,
            data: vec![1, 2, 3],
        });
        roundtrip(NfsOp::Create {
            dir: 1,
            name: "a.c".into(),
        });
        roundtrip(NfsOp::Remove {
            dir: 1,
            name: "a.c".into(),
        });
        roundtrip(NfsOp::Rename {
            from_dir: 1,
            from_name: "a".into(),
            to_dir: 2,
            to_name: "b".into(),
        });
        roundtrip(NfsOp::Mkdir {
            dir: 1,
            name: "d".into(),
        });
        roundtrip(NfsOp::Rmdir {
            dir: 1,
            name: "d".into(),
        });
        roundtrip(NfsOp::ReadDir { dir: 1 });
        roundtrip(NfsOp::Symlink {
            dir: 1,
            name: "l".into(),
            target: "../x".into(),
        });
        roundtrip(NfsOp::ReadLink { fh: 3 });
        roundtrip(NfsOp::Link {
            fh: 2,
            dir: 1,
            name: "hard".into(),
        });
    }

    #[test]
    fn results_roundtrip() {
        let attr = Fattr {
            fh: 7,
            kind: FileKind::File,
            size: 100,
            mtime: 3,
        };
        roundtrip_result(NfsResult::Attr(attr));
        roundtrip_result(NfsResult::Handle(attr));
        roundtrip_result(NfsResult::Data {
            data: vec![0; 10],
            attr,
        });
        roundtrip_result(NfsResult::Ok);
        roundtrip_result(NfsResult::Entries(vec![("a".into(), 2), ("b".into(), 3)]));
        roundtrip_result(NfsResult::Link("/target".into()));
        roundtrip_result(NfsResult::Err(NfsError::NoEnt));
    }

    #[test]
    fn read_only_classification() {
        assert!(NfsOp::Read {
            fh: 1,
            offset: 0,
            count: 1
        }
        .is_read_only());
        assert!(NfsOp::GetAttr { fh: 1 }.is_read_only());
        assert!(!NfsOp::Write {
            fh: 1,
            offset: 0,
            data: vec![]
        }
        .is_read_only());
        assert!(!NfsOp::Create {
            dir: 1,
            name: "x".into()
        }
        .is_read_only());
    }

    #[test]
    fn metadata_write_classification() {
        assert!(NfsOp::Create {
            dir: 1,
            name: "x".into()
        }
        .is_metadata_write());
        assert!(NfsOp::Rename {
            from_dir: 1,
            from_name: "a".into(),
            to_dir: 1,
            to_name: "b".into()
        }
        .is_metadata_write());
        assert!(!NfsOp::Write {
            fh: 1,
            offset: 0,
            data: vec![]
        }
        .is_metadata_write());
        assert!(!NfsOp::Read {
            fh: 1,
            offset: 0,
            count: 0
        }
        .is_metadata_write());
    }

    #[test]
    fn invalid_utf8_name_rejected() {
        let mut buf = Vec::new();
        buf.push(0u8); // Lookup tag
        1u64.encode(&mut buf);
        vec![0xffu8, 0xfe].encode(&mut buf); // invalid UTF-8
        assert!(NfsOp::from_bytes(&buf).is_err());
    }
}
