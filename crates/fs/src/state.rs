//! The filesystem state machine: a deterministic in-memory NFS server
//! core with operation-level undo (for BFT's tentative execution), an
//! incrementally maintained state fingerprint (for cheap checkpoints), and
//! canonical snapshot/restore (for state transfer).
//!
//! Two data modes: [`DataMode::Store`] keeps real file bytes (used by
//! correctness tests), [`DataMode::MetadataOnly`] keeps only sizes and a
//! content fingerprint — reads return zero-filled data. The benchmarks use
//! the latter so an Andrew500-scale run does not hold a gigabyte of file
//! data per replica; the protocol-visible behaviour (message sizes,
//! digests, determinism) is identical because the workloads write
//! zero-filled data anyway.

use crate::ops::{Fattr, Fh, FileKind, NfsError, NfsOp, NfsResult, ROOT_FH};
use bft_core::service::RestoreError;
use bft_core::wire::{Reader, Wire, WireError};
use bft_crypto::md5::{digest_parts, Digest};
use std::collections::{BTreeMap, HashMap};

/// Number of fixed state partitions for incremental checkpointing. Inodes
/// hash to partitions by handle; partition 0 additionally carries the
/// filesystem metadata (`next_fh`, logical clock).
pub const FS_PARTITIONS: u32 = 64;

/// The partition an inode belongs to.
fn partition_of(fh: Fh) -> u32 {
    (fh % u64::from(FS_PARTITIONS)) as u32
}

/// How file contents are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Keep real bytes (tests).
    Store,
    /// Keep only size + fingerprint; reads return zeros (benchmarks).
    MetadataOnly,
}

/// File content representation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Content {
    /// Real bytes.
    Bytes(Vec<u8>),
    /// Fingerprint of the write history.
    Print(u64),
}

/// One inode.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Inode {
    kind: FileKind,
    size: u64,
    mtime: u64,
    /// Number of directory entries referring to this inode.
    nlink: u32,
    content: Content,
    /// Directory entries (empty for non-directories).
    entries: BTreeMap<String, Fh>,
    /// Symlink target (empty otherwise).
    target: String,
}

impl Inode {
    fn new(kind: FileKind, mtime: u64, mode: DataMode) -> Inode {
        let content = match mode {
            DataMode::Store => Content::Bytes(Vec::new()),
            DataMode::MetadataOnly => Content::Print(0),
        };
        Inode {
            kind,
            size: 0,
            mtime,
            nlink: 1,
            content,
            entries: BTreeMap::new(),
            target: String::new(),
        }
    }

    /// A stable hash of this inode for the incremental state fingerprint.
    fn fingerprint(&self, fh: Fh) -> u128 {
        let mut meta = Vec::with_capacity(64 + self.entries.len() * 16);
        meta.extend_from_slice(&fh.to_le_bytes());
        meta.push(match self.kind {
            FileKind::File => 0,
            FileKind::Dir => 1,
            FileKind::Symlink => 2,
        });
        meta.extend_from_slice(&self.size.to_le_bytes());
        meta.extend_from_slice(&self.mtime.to_le_bytes());
        meta.extend_from_slice(&self.nlink.to_le_bytes());
        match &self.content {
            Content::Bytes(b) => {
                let d = bft_crypto::digest(b);
                meta.extend_from_slice(&d.as_bytes()[..8]);
            }
            Content::Print(p) => meta.extend_from_slice(&p.to_le_bytes()),
        }
        for (name, child) in &self.entries {
            meta.extend_from_slice(name.as_bytes());
            meta.push(0);
            meta.extend_from_slice(&child.to_le_bytes());
        }
        meta.extend_from_slice(self.target.as_bytes());
        let d = bft_crypto::digest(&meta);
        u128::from_le_bytes(*d.as_bytes())
    }

    /// Approximate canonical-encoding size, tracked per partition so
    /// checkpoint CPU charges scale with the bytes actually re-hashed.
    fn approx_encoded_size(&self) -> u64 {
        let content = match &self.content {
            Content::Bytes(b) => 8 + b.len() as u64,
            Content::Print(_) => 8,
        };
        let entries: u64 = self
            .entries
            .keys()
            .map(|name| 8 + name.len() as u64 + 8)
            .sum();
        38 + content + 8 + entries + 8 + self.target.len() as u64
    }

    fn encode(&self, fh: Fh, buf: &mut Vec<u8>) {
        fh.encode(buf);
        self.kind.encode(buf);
        self.size.encode(buf);
        self.mtime.encode(buf);
        self.nlink.encode(buf);
        match &self.content {
            Content::Bytes(b) => {
                buf.push(0);
                b.encode(buf);
            }
            Content::Print(p) => {
                buf.push(1);
                p.encode(buf);
            }
        }
        (self.entries.len() as u64).encode(buf);
        for (name, child) in &self.entries {
            name.as_bytes().to_vec().encode(buf);
            child.encode(buf);
        }
        self.target.as_bytes().to_vec().encode(buf);
    }

    fn decode(r: &mut Reader<'_>) -> Result<(Fh, Inode), WireError> {
        let fh = u64::decode(r)?;
        let kind = FileKind::decode(r)?;
        let size = u64::decode(r)?;
        let mtime = u64::decode(r)?;
        let nlink = u32::decode(r)?;
        let content = match u8::decode(r)? {
            0 => Content::Bytes(Vec::<u8>::decode(r)?),
            1 => Content::Print(u64::decode(r)?),
            t => return Err(WireError::BadTag(t)),
        };
        let n_entries = u64::decode(r)?;
        let mut entries = BTreeMap::new();
        for _ in 0..n_entries {
            let name =
                String::from_utf8(Vec::<u8>::decode(r)?).map_err(|_| WireError::BadTag(0xfe))?;
            entries.insert(name, u64::decode(r)?);
        }
        let target =
            String::from_utf8(Vec::<u8>::decode(r)?).map_err(|_| WireError::BadTag(0xfe))?;
        Ok((
            fh,
            Inode {
                kind,
                size,
                mtime,
                nlink,
                content,
                entries,
                target,
            },
        ))
    }
}

/// Undo information for one executed operation.
#[derive(Debug, Clone)]
struct UndoRecord {
    /// Inodes touched, with their prior contents (`None` = did not exist).
    touched: Vec<(Fh, Option<Inode>)>,
    next_fh: Fh,
    clock: u64,
    data_bytes: u64,
}

/// The deterministic filesystem state.
#[derive(Debug, Clone)]
pub struct FsState {
    mode: DataMode,
    inodes: HashMap<Fh, Inode>,
    next_fh: Fh,
    /// Logical clock stamped into mtimes (deterministic across replicas).
    clock: u64,
    /// Wrapping sum of per-inode fingerprints: an incremental set hash.
    print_sum: u128,
    /// Cached per-inode fingerprints backing `print_sum`.
    prints: HashMap<Fh, u128>,
    /// Total file data bytes resident (drives the disk/cache cost model).
    data_bytes: u64,
    /// Undo log for uncommitted operations, oldest first.
    undo: Vec<UndoRecord>,
    /// Per-partition wrapping fingerprint sums (incremental leaf hashes).
    part_sums: Vec<u128>,
    /// Per-partition inode counts.
    part_counts: Vec<u64>,
    /// Per-partition approximate encoded sizes.
    part_bytes: Vec<u64>,
    /// Partitions modified since the last [`FsState::take_dirty_partitions`].
    dirty: Vec<bool>,
    /// Retained copy-on-write checkpoints: token -> partition encodings
    /// saved at the first mutation after the token was retained. A
    /// partition absent from every retained map at or above a token is
    /// unmodified since that token, so the current encoding serves it.
    retained: BTreeMap<u64, HashMap<u32, Vec<u8>>>,
}

impl FsState {
    /// Creates an empty filesystem with a root directory.
    pub fn new(mode: DataMode) -> FsState {
        let mut fs = FsState {
            mode,
            inodes: HashMap::new(),
            next_fh: ROOT_FH + 1,
            clock: 0,
            print_sum: 0,
            prints: HashMap::new(),
            data_bytes: 0,
            undo: Vec::new(),
            part_sums: vec![0; FS_PARTITIONS as usize],
            part_counts: vec![0; FS_PARTITIONS as usize],
            part_bytes: vec![0; FS_PARTITIONS as usize],
            dirty: vec![false; FS_PARTITIONS as usize],
            retained: BTreeMap::new(),
        };
        let root = Inode::new(FileKind::Dir, 0, mode);
        fs.install(ROOT_FH, root);
        fs
    }

    /// The data mode.
    pub fn mode(&self) -> DataMode {
        self.mode
    }

    /// Number of inodes (including the root).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// Total file data bytes (logical, both modes).
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Number of uncommitted operations in the undo log.
    pub fn uncommitted_ops(&self) -> usize {
        self.undo.len()
    }

    /// Saves partition `p`'s current encoding into the newest retained
    /// checkpoint that has not yet copied it, so the version as of that
    /// checkpoint survives the mutation about to happen. Older retained
    /// checkpoints without a copy resolve through the forward scan in
    /// [`FsState::retained_partition`]: the set of retained tokens still
    /// lacking a copy of `p` is always a suffix (newest ones), because
    /// every mutation fills the newest gap first.
    fn cow_guard(&mut self, p: u32) {
        let Some((&token, saved)) = self.retained.iter().next_back() else {
            return;
        };
        if saved.contains_key(&p) {
            return;
        }
        let bytes = self.encode_partition(p);
        self.retained
            .get_mut(&token)
            .expect("just observed")
            .insert(p, bytes);
    }

    /// Marks the metadata partition (0) dirty before `next_fh`/`clock`
    /// change, preserving any retained version first.
    fn touch_meta(&mut self) {
        self.cow_guard(0);
        self.dirty[0] = true;
    }

    fn install(&mut self, fh: Fh, inode: Inode) {
        let part = partition_of(fh);
        self.cow_guard(part);
        self.dirty[part as usize] = true;
        let old_bytes = self.inodes.get(&fh).map_or(0, Inode::approx_encoded_size);
        match self.prints.remove(&fh) {
            Some(old) => {
                self.print_sum = self.print_sum.wrapping_sub(old);
                self.part_sums[part as usize] = self.part_sums[part as usize].wrapping_sub(old);
            }
            None => self.part_counts[part as usize] += 1,
        }
        let p = inode.fingerprint(fh);
        self.print_sum = self.print_sum.wrapping_add(p);
        self.part_sums[part as usize] = self.part_sums[part as usize].wrapping_add(p);
        self.part_bytes[part as usize] =
            self.part_bytes[part as usize] - old_bytes + inode.approx_encoded_size();
        self.prints.insert(fh, p);
        self.inodes.insert(fh, inode);
    }

    fn uninstall(&mut self, fh: Fh) {
        let part = partition_of(fh);
        self.cow_guard(part);
        if let Some(old) = self.prints.remove(&fh) {
            self.print_sum = self.print_sum.wrapping_sub(old);
            self.part_sums[part as usize] = self.part_sums[part as usize].wrapping_sub(old);
            self.part_counts[part as usize] -= 1;
            self.part_bytes[part as usize] -=
                self.inodes.get(&fh).map_or(0, Inode::approx_encoded_size);
            self.dirty[part as usize] = true;
        }
        self.inodes.remove(&fh);
    }

    fn attr_of(&self, fh: Fh) -> Option<Fattr> {
        self.inodes.get(&fh).map(|i| Fattr {
            fh,
            kind: i.kind,
            size: i.size,
            mtime: i.mtime,
        })
    }

    /// Applies a mutating operation, recording undo information.
    pub fn apply(&mut self, op: &NfsOp) -> NfsResult {
        let mut undo = UndoRecord {
            touched: Vec::new(),
            next_fh: self.next_fh,
            clock: self.clock,
            data_bytes: self.data_bytes,
        };
        let result = self.apply_inner(op, &mut undo);
        self.undo.push(undo);
        result
    }

    /// Saves the prior state of `fh` into the undo record (first touch
    /// only).
    fn touch(&self, fh: Fh, undo: &mut UndoRecord) {
        if undo.touched.iter().any(|(f, _)| *f == fh) {
            return;
        }
        undo.touched.push((fh, self.inodes.get(&fh).cloned()));
    }

    fn tick(&mut self) -> u64 {
        self.touch_meta();
        self.clock += 1;
        self.clock
    }

    fn apply_inner(&mut self, op: &NfsOp, undo: &mut UndoRecord) -> NfsResult {
        match op {
            NfsOp::Lookup { .. }
            | NfsOp::GetAttr { .. }
            | NfsOp::Read { .. }
            | NfsOp::ReadDir { .. }
            | NfsOp::ReadLink { .. } => self.query(op),
            NfsOp::SetAttr { fh, size } => {
                let Some(inode) = self.inodes.get(fh) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if inode.kind == FileKind::Dir && size.is_some() {
                    return NfsResult::Err(NfsError::IsDir);
                }
                self.touch(*fh, undo);
                let mtime = self.tick();
                let mut inode = self.inodes.get(fh).cloned().expect("checked");
                if let Some(new_size) = size {
                    let old = inode.size;
                    inode.size = *new_size;
                    match &mut inode.content {
                        Content::Bytes(b) => b.resize(*new_size as usize, 0),
                        Content::Print(p) => *p = mix(*p, 0x5e7a_77f1, *new_size),
                    }
                    self.data_bytes = self.data_bytes + *new_size
                        - old.min(*new_size)
                        - old.saturating_sub(*new_size);
                }
                inode.mtime = mtime;
                self.install(*fh, inode);
                NfsResult::Attr(self.attr_of(*fh).expect("present"))
            }
            NfsOp::Write { fh, offset, data } => {
                let Some(inode) = self.inodes.get(fh) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if inode.kind != FileKind::File {
                    return NfsResult::Err(NfsError::IsDir);
                }
                self.touch(*fh, undo);
                let mtime = self.tick();
                let mut inode = self.inodes.get(fh).cloned().expect("checked");
                let end = offset + data.len() as u64;
                let old_size = inode.size;
                match &mut inode.content {
                    Content::Bytes(b) => {
                        if b.len() < end as usize {
                            b.resize(end as usize, 0);
                        }
                        b[*offset as usize..end as usize].copy_from_slice(data);
                    }
                    Content::Print(p) => {
                        let chunk = bft_crypto::digest(data).short();
                        *p = mix(mix(*p, *offset, data.len() as u64), chunk, 0);
                    }
                }
                inode.size = inode.size.max(end);
                inode.mtime = mtime;
                let grown = inode.size - old_size;
                self.data_bytes += grown;
                self.install(*fh, inode);
                NfsResult::Attr(self.attr_of(*fh).expect("present"))
            }
            NfsOp::Create { dir, name } => self.make_entry(undo, *dir, name, FileKind::File, ""),
            NfsOp::Mkdir { dir, name } => self.make_entry(undo, *dir, name, FileKind::Dir, ""),
            NfsOp::Symlink { dir, name, target } => {
                self.make_entry(undo, *dir, name, FileKind::Symlink, target)
            }
            NfsOp::Link { fh, dir, name } => {
                let Some(existing) = self.inodes.get(fh) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if existing.kind == FileKind::Dir {
                    // NFS forbids hard links to directories.
                    return NfsResult::Err(NfsError::IsDir);
                }
                let Some(parent) = self.inodes.get(dir) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if parent.kind != FileKind::Dir {
                    return NfsResult::Err(NfsError::NotDir);
                }
                if parent.entries.contains_key(name) {
                    return NfsResult::Err(NfsError::Exists);
                }
                if name.is_empty() || name.contains('/') {
                    return NfsResult::Err(NfsError::Inval);
                }
                self.touch(*dir, undo);
                self.touch(*fh, undo);
                let mtime = self.tick();
                let mut target = self.inodes.get(fh).cloned().expect("checked");
                target.nlink += 1;
                target.mtime = mtime;
                self.install(*fh, target);
                let mut parent = self.inodes.get(dir).cloned().expect("checked");
                parent.entries.insert(name.clone(), *fh);
                parent.mtime = mtime;
                self.install(*dir, parent);
                NfsResult::Handle(self.attr_of(*fh).expect("present"))
            }
            NfsOp::Remove { dir, name } => self.remove_entry(undo, *dir, name, false),
            NfsOp::Rmdir { dir, name } => self.remove_entry(undo, *dir, name, true),
            NfsOp::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => {
                let Some(src) = self.inodes.get(from_dir) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if src.kind != FileKind::Dir {
                    return NfsResult::Err(NfsError::NotDir);
                }
                let Some(&moved) = src.entries.get(from_name) else {
                    return NfsResult::Err(NfsError::NoEnt);
                };
                let Some(dst) = self.inodes.get(to_dir) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if dst.kind != FileKind::Dir {
                    return NfsResult::Err(NfsError::NotDir);
                }
                // Replacing a non-empty directory is refused.
                if let Some(&existing) = dst.entries.get(to_name) {
                    if let Some(e) = self.inodes.get(&existing) {
                        if e.kind == FileKind::Dir && !e.entries.is_empty() {
                            return NfsResult::Err(NfsError::NotEmpty);
                        }
                    }
                }
                self.touch(*from_dir, undo);
                self.touch(*to_dir, undo);
                let mtime = self.tick();
                let displaced = {
                    let mut src_inode = self.inodes.get(from_dir).cloned().expect("checked");
                    src_inode.entries.remove(from_name);
                    src_inode.mtime = mtime;
                    self.install(*from_dir, src_inode);
                    let mut dst_inode = self.inodes.get(to_dir).cloned().expect("checked");
                    let displaced = dst_inode.entries.insert(to_name.clone(), moved);
                    dst_inode.mtime = mtime;
                    self.install(*to_dir, dst_inode);
                    displaced
                };
                if let Some(old) = displaced {
                    if old != moved {
                        self.touch(old, undo);
                        self.unlink_inode(old, mtime);
                    }
                }
                NfsResult::Ok
            }
        }
    }

    fn make_entry(
        &mut self,
        undo: &mut UndoRecord,
        dir: Fh,
        name: &str,
        kind: FileKind,
        target: &str,
    ) -> NfsResult {
        let Some(parent) = self.inodes.get(&dir) else {
            return NfsResult::Err(NfsError::Stale);
        };
        if parent.kind != FileKind::Dir {
            return NfsResult::Err(NfsError::NotDir);
        }
        if parent.entries.contains_key(name) {
            return NfsResult::Err(NfsError::Exists);
        }
        if name.is_empty() || name.contains('/') {
            return NfsResult::Err(NfsError::Inval);
        }
        self.touch(dir, undo);
        let mtime = self.tick();
        let fh = self.next_fh;
        self.next_fh += 1;
        self.touch(fh, undo); // records "did not exist"
        let mut inode = Inode::new(kind, mtime, self.mode);
        inode.target = target.to_owned();
        self.install(fh, inode);
        let mut parent = self.inodes.get(&dir).cloned().expect("checked");
        parent.entries.insert(name.to_owned(), fh);
        parent.mtime = mtime;
        self.install(dir, parent);
        NfsResult::Handle(self.attr_of(fh).expect("just installed"))
    }

    fn remove_entry(
        &mut self,
        undo: &mut UndoRecord,
        dir: Fh,
        name: &str,
        want_dir: bool,
    ) -> NfsResult {
        let Some(parent) = self.inodes.get(&dir) else {
            return NfsResult::Err(NfsError::Stale);
        };
        if parent.kind != FileKind::Dir {
            return NfsResult::Err(NfsError::NotDir);
        }
        let Some(&fh) = parent.entries.get(name) else {
            return NfsResult::Err(NfsError::NoEnt);
        };
        let victim = self.inodes.get(&fh).expect("directory entries are valid");
        match (want_dir, victim.kind) {
            (true, FileKind::Dir) => {
                if !victim.entries.is_empty() {
                    return NfsResult::Err(NfsError::NotEmpty);
                }
            }
            (true, _) => return NfsResult::Err(NfsError::NotDir),
            (false, FileKind::Dir) => return NfsResult::Err(NfsError::IsDir),
            (false, _) => {}
        }
        self.touch(dir, undo);
        self.touch(fh, undo);
        let mtime = self.tick();
        self.unlink_inode(fh, mtime);
        let mut parent = self.inodes.get(&dir).cloned().expect("checked");
        parent.entries.remove(name);
        parent.mtime = mtime;
        self.install(dir, parent);
        NfsResult::Ok
    }

    /// Drops one name referring to `fh`: decrements the link count and
    /// destroys the inode when the last name goes away.
    fn unlink_inode(&mut self, fh: Fh, mtime: u64) {
        let Some(inode) = self.inodes.get(&fh) else {
            return;
        };
        if inode.nlink <= 1 {
            self.data_bytes -= inode.size;
            self.uninstall(fh);
        } else {
            let mut inode = inode.clone();
            inode.nlink -= 1;
            inode.mtime = mtime;
            self.install(fh, inode);
        }
    }

    /// Evaluates a read-only operation without mutating anything.
    pub fn query(&self, op: &NfsOp) -> NfsResult {
        match op {
            NfsOp::Lookup { dir, name } => {
                let Some(parent) = self.inodes.get(dir) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if parent.kind != FileKind::Dir {
                    return NfsResult::Err(NfsError::NotDir);
                }
                match parent.entries.get(name) {
                    Some(&fh) => NfsResult::Handle(self.attr_of(fh).expect("valid entry")),
                    None => NfsResult::Err(NfsError::NoEnt),
                }
            }
            NfsOp::GetAttr { fh } => match self.attr_of(*fh) {
                Some(a) => NfsResult::Attr(a),
                None => NfsResult::Err(NfsError::Stale),
            },
            NfsOp::Read { fh, offset, count } => {
                let Some(inode) = self.inodes.get(fh) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if inode.kind == FileKind::Dir {
                    return NfsResult::Err(NfsError::IsDir);
                }
                let start = (*offset).min(inode.size);
                let end = (offset + *count as u64).min(inode.size);
                let data = match &inode.content {
                    Content::Bytes(b) => b[start as usize..end as usize].to_vec(),
                    Content::Print(_) => vec![0u8; (end - start) as usize],
                };
                NfsResult::Data {
                    data,
                    attr: self.attr_of(*fh).expect("present"),
                }
            }
            NfsOp::ReadDir { dir } => {
                let Some(inode) = self.inodes.get(dir) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if inode.kind != FileKind::Dir {
                    return NfsResult::Err(NfsError::NotDir);
                }
                NfsResult::Entries(inode.entries.iter().map(|(n, &f)| (n.clone(), f)).collect())
            }
            NfsOp::ReadLink { fh } => {
                let Some(inode) = self.inodes.get(fh) else {
                    return NfsResult::Err(NfsError::Stale);
                };
                if inode.kind != FileKind::Symlink {
                    return NfsResult::Err(NfsError::Inval);
                }
                NfsResult::Link(inode.target.clone())
            }
            _ => NfsResult::Err(NfsError::Inval),
        }
    }

    /// Discards undo information for the `ops` oldest uncommitted
    /// operations.
    pub fn commit_prefix(&mut self, ops: usize) {
        let n = ops.min(self.undo.len());
        self.undo.drain(..n);
    }

    /// Undoes the `ops` newest uncommitted operations.
    pub fn rollback_suffix(&mut self, ops: usize) {
        for _ in 0..ops {
            let Some(rec) = self.undo.pop() else { break };
            // Restore newest-first within the record too.
            for (fh, prior) in rec.touched.into_iter().rev() {
                match prior {
                    Some(inode) => self.install(fh, inode),
                    None => self.uninstall(fh),
                }
            }
            if rec.next_fh != self.next_fh || rec.clock != self.clock {
                self.touch_meta();
            }
            self.next_fh = rec.next_fh;
            self.clock = rec.clock;
            self.data_bytes = rec.data_bytes;
        }
    }

    /// A digest of the logical state, maintained incrementally.
    pub fn state_digest(&self) -> Digest {
        digest_parts(&[
            b"FS",
            &self.print_sum.to_le_bytes(),
            &self.next_fh.to_le_bytes(),
            &self.clock.to_le_bytes(),
            &(self.inodes.len() as u64).to_le_bytes(),
        ])
    }

    /// Serializes the full state canonically.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(match self.mode {
            DataMode::Store => 0u8,
            DataMode::MetadataOnly => 1,
        });
        self.next_fh.encode(&mut buf);
        self.clock.encode(&mut buf);
        let mut fhs: Vec<&Fh> = self.inodes.keys().collect();
        fhs.sort_unstable();
        (fhs.len() as u64).encode(&mut buf);
        for &fh in fhs {
            self.inodes[&fh].encode(fh, &mut buf);
        }
        buf
    }

    /// Rebuilds the state from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input; the state is then
    /// unspecified.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = Reader::new(bytes);
        let mode = match u8::decode(&mut r)? {
            0 => DataMode::Store,
            1 => DataMode::MetadataOnly,
            t => return Err(WireError::BadTag(t)),
        };
        let next_fh = u64::decode(&mut r)?;
        let clock = u64::decode(&mut r)?;
        let count = u64::decode(&mut r)?;
        let mut inodes = HashMap::with_capacity(count as usize);
        let mut data_bytes = 0u64;
        for _ in 0..count {
            let (fh, inode) = Inode::decode(&mut r)?;
            data_bytes += inode.size;
            inodes.insert(fh, inode);
        }
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        self.mode = mode;
        self.next_fh = next_fh;
        self.clock = clock;
        self.inodes = inodes;
        self.data_bytes = data_bytes;
        self.undo.clear();
        self.retained.clear();
        self.prints.clear();
        self.print_sum = 0;
        self.part_sums = vec![0; FS_PARTITIONS as usize];
        self.part_counts = vec![0; FS_PARTITIONS as usize];
        self.part_bytes = vec![0; FS_PARTITIONS as usize];
        self.dirty = vec![true; FS_PARTITIONS as usize];
        let fhs: Vec<Fh> = self.inodes.keys().copied().collect();
        for fh in fhs {
            let part = partition_of(fh) as usize;
            let inode = &self.inodes[&fh];
            let p = inode.fingerprint(fh);
            self.print_sum = self.print_sum.wrapping_add(p);
            self.part_sums[part] = self.part_sums[part].wrapping_add(p);
            self.part_counts[part] += 1;
            self.part_bytes[part] += inode.approx_encoded_size();
            self.prints.insert(fh, p);
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Partitioned checkpointing
    // -----------------------------------------------------------------

    /// Digest of partition `p`, computed in O(1) from the incrementally
    /// maintained fingerprint sum. Partition 0 additionally commits to
    /// the filesystem metadata (`next_fh`, logical clock).
    pub fn partition_digest(&self, p: u32) -> Digest {
        let meta = if p == 0 {
            Some((self.next_fh, self.clock))
        } else {
            None
        };
        Self::partition_digest_of(
            p,
            self.part_sums[p as usize],
            self.part_counts[p as usize],
            meta,
        )
    }

    fn partition_digest_of(p: u32, sum: u128, count: u64, meta: Option<(u64, u64)>) -> Digest {
        let (next_fh, clock) = meta.unwrap_or((0, 0));
        digest_parts(&[
            b"FSP",
            &p.to_le_bytes(),
            &sum.to_le_bytes(),
            &count.to_le_bytes(),
            &next_fh.to_le_bytes(),
            &clock.to_le_bytes(),
        ])
    }

    /// Approximate encoded size of partition `p` in bytes.
    pub fn partition_byte_size(&self, p: u32) -> usize {
        let meta = if p == 0 { 16 } else { 0 };
        self.part_bytes[p as usize] as usize + meta
    }

    /// Serializes partition `p` canonically: metadata (partition 0 only),
    /// then the partition's inodes sorted by handle.
    pub fn encode_partition(&self, p: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        if p == 0 {
            self.next_fh.encode(&mut buf);
            self.clock.encode(&mut buf);
        }
        let mut fhs: Vec<Fh> = self
            .inodes
            .keys()
            .copied()
            .filter(|&fh| partition_of(fh) == p)
            .collect();
        fhs.sort_unstable();
        (fhs.len() as u64).encode(&mut buf);
        for fh in fhs {
            self.inodes[&fh].encode(fh, &mut buf);
        }
        buf
    }

    /// Replaces partition `p` from `bytes`, verifying that the decoded
    /// content digests to `expect` *before* mutating anything.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] on malformed bytes, inodes outside the
    /// partition, or a digest mismatch; the state is untouched on error.
    pub fn restore_partition(
        &mut self,
        p: u32,
        bytes: &[u8],
        expect: &Digest,
    ) -> Result<(), RestoreError> {
        if p >= FS_PARTITIONS {
            return Err(RestoreError(format!("partition {p} out of range")));
        }
        let mut r = Reader::new(bytes);
        let wire = |e: WireError| RestoreError(format!("bad partition encoding: {e:?}"));
        let meta = if p == 0 {
            Some((
                u64::decode(&mut r).map_err(wire)?,
                u64::decode(&mut r).map_err(wire)?,
            ))
        } else {
            None
        };
        let count = u64::decode(&mut r).map_err(wire)?;
        let mut incoming = Vec::with_capacity(count as usize);
        let mut sum = 0u128;
        let mut last_fh = None;
        for _ in 0..count {
            let (fh, inode) = Inode::decode(&mut r).map_err(wire)?;
            if partition_of(fh) != p {
                return Err(RestoreError(format!("inode {fh} outside partition {p}")));
            }
            if last_fh.is_some_and(|prev| fh <= prev) {
                return Err(RestoreError("partition inodes not sorted".into()));
            }
            last_fh = Some(fh);
            sum = sum.wrapping_add(inode.fingerprint(fh));
            incoming.push((fh, inode));
        }
        if r.remaining() != 0 {
            return Err(RestoreError("trailing bytes in partition".into()));
        }
        if Self::partition_digest_of(p, sum, count, meta) != *expect {
            return Err(RestoreError("partition digest mismatch".into()));
        }
        // Verified: replace the partition's inodes through install/
        // uninstall so fingerprint sums and retained copies stay correct.
        let current: Vec<Fh> = self
            .inodes
            .keys()
            .copied()
            .filter(|&fh| partition_of(fh) == p)
            .collect();
        for fh in current {
            self.data_bytes -= self.inodes[&fh].size;
            self.uninstall(fh);
        }
        for (fh, inode) in incoming {
            self.data_bytes += inode.size;
            self.install(fh, inode);
        }
        if let Some((next_fh, clock)) = meta {
            self.touch_meta();
            self.next_fh = next_fh;
            self.clock = clock;
        }
        // Undo records predating the transfer are meaningless now.
        self.undo.clear();
        Ok(())
    }

    /// Partitions modified since the previous call; resets the dirty set.
    pub fn take_dirty_partitions(&mut self) -> Vec<u32> {
        let mut out = Vec::new();
        for (p, d) in self.dirty.iter_mut().enumerate() {
            if std::mem::take(d) {
                out.push(p as u32);
            }
        }
        out
    }

    /// Retains a copy-on-write version of the current state under
    /// `token`. Partition encodings are saved lazily at the first
    /// mutation after this point.
    pub fn retain_checkpoint(&mut self, token: u64) {
        self.retained.entry(token).or_default();
    }

    /// Serializes partition `p` as of retained checkpoint `token`, or
    /// `None` if that version is not retained.
    pub fn retained_partition(&self, token: u64, p: u32) -> Option<Vec<u8>> {
        if p >= FS_PARTITIONS || !self.retained.contains_key(&token) {
            return None;
        }
        // The first save at or after `token` is the version as of
        // `token`: partition `p` was unmodified between the two points,
        // or the intervening checkpoint would hold a save itself.
        for saved in self.retained.range(token..).map(|(_, s)| s) {
            if let Some(bytes) = saved.get(&p) {
                return Some(bytes.clone());
            }
        }
        Some(self.encode_partition(p))
    }

    /// Discards retained checkpoints older than `token`.
    pub fn release_checkpoints_below(&mut self, token: u64) {
        self.retained = self.retained.split_off(&token);
    }
}

/// Cheap deterministic mixer for content fingerprints.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x = seed ^ a.rotate_left(17) ^ b.rotate_left(41);
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 29;
    x.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FsState {
        FsState::new(DataMode::Store)
    }

    fn create(fs: &mut FsState, dir: Fh, name: &str) -> Fh {
        fs.apply(&NfsOp::Create {
            dir,
            name: name.into(),
        })
        .handle()
        .expect("create succeeds")
    }

    fn mkdir(fs: &mut FsState, dir: Fh, name: &str) -> Fh {
        fs.apply(&NfsOp::Mkdir {
            dir,
            name: name.into(),
        })
        .handle()
        .expect("mkdir succeeds")
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "hello.txt");
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: b"hello world".to_vec(),
        });
        let res = fs.query(&NfsOp::Read {
            fh: f,
            offset: 6,
            count: 5,
        });
        match res {
            NfsResult::Data { data, attr } => {
                assert_eq!(data, b"world");
                assert_eq!(attr.size, 11);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "sparse");
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 10,
            data: vec![7; 2],
        });
        let NfsResult::Data { data, .. } = fs.query(&NfsOp::Read {
            fh: f,
            offset: 0,
            count: 12,
        }) else {
            panic!("read failed");
        };
        assert_eq!(&data[..10], &[0u8; 10]);
        assert_eq!(&data[10..], &[7, 7]);
    }

    #[test]
    fn read_past_eof_truncates() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "short");
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![1; 4],
        });
        let NfsResult::Data { data, .. } = fs.query(&NfsOp::Read {
            fh: f,
            offset: 2,
            count: 100,
        }) else {
            panic!("read failed");
        };
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn lookup_and_namespace_errors() {
        let mut fs = fs();
        let d = mkdir(&mut fs, ROOT_FH, "src");
        let f = create(&mut fs, d, "main.c");
        assert_eq!(
            fs.query(&NfsOp::Lookup {
                dir: d,
                name: "main.c".into()
            })
            .handle(),
            Some(f)
        );
        assert_eq!(
            fs.query(&NfsOp::Lookup {
                dir: d,
                name: "nope".into()
            }),
            NfsResult::Err(NfsError::NoEnt)
        );
        assert_eq!(
            fs.query(&NfsOp::Lookup {
                dir: f,
                name: "x".into()
            }),
            NfsResult::Err(NfsError::NotDir)
        );
        assert_eq!(
            fs.apply(&NfsOp::Create {
                dir: d,
                name: "main.c".into()
            }),
            NfsResult::Err(NfsError::Exists)
        );
        assert_eq!(
            fs.apply(&NfsOp::Create {
                dir: 999,
                name: "x".into()
            }),
            NfsResult::Err(NfsError::Stale)
        );
        assert_eq!(
            fs.apply(&NfsOp::Create {
                dir: d,
                name: "a/b".into()
            }),
            NfsResult::Err(NfsError::Inval)
        );
    }

    #[test]
    fn remove_and_rmdir_semantics() {
        let mut fs = fs();
        let d = mkdir(&mut fs, ROOT_FH, "dir");
        let f = create(&mut fs, d, "f");
        // rmdir on non-empty dir fails; remove on dir fails.
        assert_eq!(
            fs.apply(&NfsOp::Rmdir {
                dir: ROOT_FH,
                name: "dir".into()
            }),
            NfsResult::Err(NfsError::NotEmpty)
        );
        assert_eq!(
            fs.apply(&NfsOp::Remove {
                dir: ROOT_FH,
                name: "dir".into()
            }),
            NfsResult::Err(NfsError::IsDir)
        );
        assert_eq!(
            fs.apply(&NfsOp::Remove {
                dir: d,
                name: "f".into()
            }),
            NfsResult::Ok
        );
        assert_eq!(
            fs.query(&NfsOp::GetAttr { fh: f }),
            NfsResult::Err(NfsError::Stale)
        );
        assert_eq!(
            fs.apply(&NfsOp::Rmdir {
                dir: ROOT_FH,
                name: "dir".into()
            }),
            NfsResult::Ok
        );
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = fs();
        let d1 = mkdir(&mut fs, ROOT_FH, "a");
        let d2 = mkdir(&mut fs, ROOT_FH, "b");
        let f = create(&mut fs, d1, "x");
        let g = create(&mut fs, d2, "y");
        assert_eq!(
            fs.apply(&NfsOp::Rename {
                from_dir: d1,
                from_name: "x".into(),
                to_dir: d2,
                to_name: "y".into(),
            }),
            NfsResult::Ok
        );
        // x is gone from a, y in b now refers to f, g destroyed.
        assert!(fs
            .query(&NfsOp::Lookup {
                dir: d1,
                name: "x".into()
            })
            .is_err());
        assert_eq!(
            fs.query(&NfsOp::Lookup {
                dir: d2,
                name: "y".into()
            })
            .handle(),
            Some(f)
        );
        assert!(fs.query(&NfsOp::GetAttr { fh: g }).is_err());
    }

    #[test]
    fn readdir_is_sorted() {
        let mut fs = fs();
        create(&mut fs, ROOT_FH, "zeta");
        create(&mut fs, ROOT_FH, "alpha");
        let NfsResult::Entries(entries) = fs.query(&NfsOp::ReadDir { dir: ROOT_FH }) else {
            panic!("readdir failed");
        };
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn symlink_roundtrip() {
        let mut fs = fs();
        let l = fs
            .apply(&NfsOp::Symlink {
                dir: ROOT_FH,
                name: "link".into(),
                target: "../elsewhere".into(),
            })
            .handle()
            .expect("symlink");
        assert_eq!(
            fs.query(&NfsOp::ReadLink { fh: l }),
            NfsResult::Link("../elsewhere".into())
        );
        let f = create(&mut fs, ROOT_FH, "file");
        assert_eq!(
            fs.query(&NfsOp::ReadLink { fh: f }),
            NfsResult::Err(NfsError::Inval)
        );
    }

    #[test]
    fn setattr_truncates() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "t");
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![9; 100],
        });
        fs.apply(&NfsOp::SetAttr {
            fh: f,
            size: Some(10),
        });
        let NfsResult::Data { data, attr } = fs.query(&NfsOp::Read {
            fh: f,
            offset: 0,
            count: 100,
        }) else {
            panic!()
        };
        assert_eq!(attr.size, 10);
        assert_eq!(data, vec![9; 10]);
    }

    #[test]
    fn rollback_undoes_operations() {
        let mut fs = fs();
        let d0 = fs.state_digest();
        let f = create(&mut fs, ROOT_FH, "tmp");
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![1; 50],
        });
        assert_eq!(fs.uncommitted_ops(), 2);
        fs.rollback_suffix(2);
        assert_eq!(fs.state_digest(), d0, "state fully restored");
        assert_eq!(fs.inode_count(), 1);
        assert_eq!(fs.data_bytes(), 0);
    }

    #[test]
    fn rollback_after_commit_boundary() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "keep");
        fs.commit_prefix(1);
        let mid = fs.state_digest();
        create(&mut fs, ROOT_FH, "drop");
        fs.apply(&NfsOp::Remove {
            dir: ROOT_FH,
            name: "keep".into(),
        });
        fs.rollback_suffix(2);
        assert_eq!(fs.state_digest(), mid);
        assert_eq!(
            fs.query(&NfsOp::GetAttr { fh: f }).attr().map(|a| a.fh),
            Some(f)
        );
    }

    #[test]
    fn fingerprint_tracks_state_not_history() {
        // Two different orders of independent ops converge when they yield
        // the same per-inode facts; digests differ when state differs.
        let mut a = fs();
        let mut b = fs();
        create(&mut a, ROOT_FH, "x");
        create(&mut b, ROOT_FH, "x");
        assert_eq!(a.state_digest(), b.state_digest());
        create(&mut a, ROOT_FH, "y");
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        for mode in [DataMode::Store, DataMode::MetadataOnly] {
            let mut fs = FsState::new(mode);
            let d = mkdir(&mut fs, ROOT_FH, "dir");
            let f = create(&mut fs, d, "file");
            fs.apply(&NfsOp::Write {
                fh: f,
                offset: 0,
                data: vec![5; 1000],
            });
            fs.apply(&NfsOp::Symlink {
                dir: ROOT_FH,
                name: "l".into(),
                target: "dir/file".into(),
            });
            let digest = fs.state_digest();
            let snap = fs.snapshot();
            let mut restored = FsState::new(mode);
            restored.restore(&snap).expect("restore");
            assert_eq!(restored.state_digest(), digest, "mode {mode:?}");
            assert_eq!(restored.data_bytes(), fs.data_bytes());
            // And it keeps working after restore.
            let NfsResult::Data { data, .. } = restored.query(&NfsOp::Read {
                fh: f,
                offset: 0,
                count: 10,
            }) else {
                panic!()
            };
            assert_eq!(data.len(), 10);
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut fs = fs();
        assert!(fs.restore(&[1, 2, 3]).is_err());
    }

    #[test]
    fn metadata_only_mode_is_deterministic() {
        let run = || {
            let mut fs = FsState::new(DataMode::MetadataOnly);
            let f = create(&mut fs, ROOT_FH, "f");
            fs.apply(&NfsOp::Write {
                fh: f,
                offset: 0,
                data: vec![0; 4096],
            });
            fs.apply(&NfsOp::Write {
                fh: f,
                offset: 4096,
                data: vec![0; 100],
            });
            fs.state_digest()
        };
        assert_eq!(run(), run());
        // Reads return zero-filled data of the right length.
        let mut fs = FsState::new(DataMode::MetadataOnly);
        let f = create(&mut fs, ROOT_FH, "f");
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![1; 100],
        });
        let NfsResult::Data { data, .. } = fs.query(&NfsOp::Read {
            fh: f,
            offset: 0,
            count: 50,
        }) else {
            panic!()
        };
        assert_eq!(data, vec![0; 50]);
    }

    #[test]
    fn hard_links_share_content_and_count_names() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "orig");
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: b"shared".to_vec(),
        });
        let res = fs.apply(&NfsOp::Link {
            fh: f,
            dir: ROOT_FH,
            name: "alias".into(),
        });
        assert_eq!(res.handle(), Some(f), "the link resolves to the same inode");
        // Writing through one name is visible through the other.
        assert_eq!(
            fs.query(&NfsOp::Lookup {
                dir: ROOT_FH,
                name: "alias".into()
            })
            .handle(),
            Some(f)
        );
        // Removing one name keeps the data alive...
        fs.apply(&NfsOp::Remove {
            dir: ROOT_FH,
            name: "orig".into(),
        });
        let NfsResult::Data { data, .. } = fs.query(&NfsOp::Read {
            fh: f,
            offset: 0,
            count: 16,
        }) else {
            panic!("inode must survive while a name remains");
        };
        assert_eq!(data, b"shared");
        assert_eq!(fs.data_bytes(), 6, "content counted once");
        // ...removing the last name destroys it.
        fs.apply(&NfsOp::Remove {
            dir: ROOT_FH,
            name: "alias".into(),
        });
        assert_eq!(
            fs.query(&NfsOp::GetAttr { fh: f }),
            NfsResult::Err(NfsError::Stale)
        );
        assert_eq!(fs.data_bytes(), 0);
    }

    #[test]
    fn hard_link_rules() {
        let mut fs = fs();
        let d = mkdir(&mut fs, ROOT_FH, "dir");
        let f = create(&mut fs, ROOT_FH, "f");
        // No hard links to directories.
        assert_eq!(
            fs.apply(&NfsOp::Link {
                fh: d,
                dir: ROOT_FH,
                name: "dlink".into()
            }),
            NfsResult::Err(NfsError::IsDir)
        );
        // Name collisions rejected.
        assert_eq!(
            fs.apply(&NfsOp::Link {
                fh: f,
                dir: ROOT_FH,
                name: "f".into()
            }),
            NfsResult::Err(NfsError::Exists)
        );
        // Stale source handle rejected.
        assert_eq!(
            fs.apply(&NfsOp::Link {
                fh: 999,
                dir: ROOT_FH,
                name: "x".into()
            }),
            NfsResult::Err(NfsError::Stale)
        );
    }

    #[test]
    fn link_rollback_restores_counts() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "f");
        fs.commit_prefix(1);
        let d0 = fs.state_digest();
        fs.apply(&NfsOp::Link {
            fh: f,
            dir: ROOT_FH,
            name: "alias".into(),
        });
        fs.apply(&NfsOp::Remove {
            dir: ROOT_FH,
            name: "f".into(),
        });
        fs.rollback_suffix(2);
        assert_eq!(fs.state_digest(), d0);
    }

    #[test]
    fn partition_digests_match_fresh_recompute() {
        // Incrementally maintained partition sums must agree with a state
        // rebuilt from scratch (snapshot/restore recomputes everything).
        let mut fs = fs();
        let d = mkdir(&mut fs, ROOT_FH, "dir");
        for i in 0..200 {
            let f = create(&mut fs, d, &format!("f{i}"));
            fs.apply(&NfsOp::Write {
                fh: f,
                offset: 0,
                data: vec![i as u8; 32],
            });
        }
        fs.apply(&NfsOp::Remove {
            dir: d,
            name: "f7".into(),
        });
        fs.rollback_suffix(1);
        let mut rebuilt = FsState::new(DataMode::Store);
        rebuilt.restore(&fs.snapshot()).expect("restore");
        for p in 0..FS_PARTITIONS {
            assert_eq!(
                fs.partition_digest(p),
                rebuilt.partition_digest(p),
                "partition {p}"
            );
        }
    }

    #[test]
    fn dirty_partitions_track_touched_inodes() {
        let mut fs = fs();
        fs.take_dirty_partitions();
        assert!(fs.take_dirty_partitions().is_empty(), "drained");
        let f = create(&mut fs, ROOT_FH, "f");
        let dirty = fs.take_dirty_partitions();
        assert!(dirty.contains(&0), "metadata partition (clock/next_fh)");
        assert!(dirty.contains(&partition_of(ROOT_FH)), "parent directory");
        assert!(dirty.contains(&partition_of(f)), "new inode");
        // A write dirties only the file's partition (plus metadata).
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![1; 8],
        });
        let dirty = fs.take_dirty_partitions();
        let mut expect = vec![0, partition_of(f)];
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(dirty, expect);
    }

    #[test]
    fn partition_roundtrip_reassembles_state() {
        let mut src = fs();
        let d = mkdir(&mut src, ROOT_FH, "d");
        for i in 0..100 {
            create(&mut src, d, &format!("f{i}"));
        }
        let mut dst = fs();
        for p in 0..FS_PARTITIONS {
            let bytes = src.encode_partition(p);
            dst.restore_partition(p, &bytes, &src.partition_digest(p))
                .expect("partition restores");
        }
        assert_eq!(dst.state_digest(), src.state_digest());
        assert_eq!(dst.data_bytes(), src.data_bytes());
        assert_eq!(dst.inode_count(), src.inode_count());
    }

    #[test]
    fn restore_partition_verifies_before_applying() {
        let mut fs = fs();
        create(&mut fs, ROOT_FH, "f");
        let digest_before = fs.state_digest();
        let p = partition_of(ROOT_FH);
        let good = fs.encode_partition(p);
        // Corrupt bytes: rejected, state untouched.
        let mut bad = good.clone();
        *bad.last_mut().expect("non-empty") ^= 0xff;
        assert!(fs
            .restore_partition(p, &bad, &fs.partition_digest(p).clone())
            .is_err());
        assert_eq!(fs.state_digest(), digest_before);
        // Wrong digest: rejected.
        let wrong = bft_crypto::digest(b"nope");
        assert!(fs.restore_partition(p, &good, &wrong).is_err());
        assert_eq!(fs.state_digest(), digest_before);
        // Inode outside the partition: rejected.
        let other = (p + 1) % FS_PARTITIONS;
        assert!(fs
            .restore_partition(other, &good, &fs.partition_digest(other).clone())
            .is_err());
        assert_eq!(fs.state_digest(), digest_before);
    }

    #[test]
    fn retained_checkpoints_serve_old_partition_versions() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "f");
        fs.retain_checkpoint(10);
        let before: Vec<Vec<u8>> = (0..FS_PARTITIONS).map(|p| fs.encode_partition(p)).collect();
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![9; 100],
        });
        fs.retain_checkpoint(20);
        // Every partition (touched or not) serves its version as of 10.
        for p in 0..FS_PARTITIONS {
            assert_eq!(
                fs.retained_partition(10, p).expect("retained"),
                before[p as usize],
                "partition {p} as of token 10"
            );
        }
        // Token 20 serves the current (post-write) version.
        assert_eq!(
            fs.retained_partition(20, partition_of(f))
                .expect("retained"),
            fs.encode_partition(partition_of(f))
        );
        // Unknown and released tokens return nothing.
        assert_eq!(fs.retained_partition(15, 0), None);
        fs.release_checkpoints_below(20);
        assert_eq!(fs.retained_partition(10, 0), None, "released");
        assert!(fs.retained_partition(20, 0).is_some());
    }

    #[test]
    fn cow_save_chain_spans_untouched_checkpoints() {
        // A partition untouched across several retained checkpoints must
        // resolve through the forward scan to the first later save.
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "f");
        let p = partition_of(f);
        fs.retain_checkpoint(1);
        fs.retain_checkpoint(2); // no mutation between 1 and 2
        let v_at_12 = fs.encode_partition(p);
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![1; 10],
        });
        // The save landed in token 2; token 1 resolves through it.
        assert_eq!(fs.retained_partition(1, p).expect("retained"), v_at_12);
        assert_eq!(fs.retained_partition(2, p).expect("retained"), v_at_12);
        fs.retain_checkpoint(3);
        let v_at_3 = fs.encode_partition(p);
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![2; 10],
        });
        assert_eq!(fs.retained_partition(3, p).expect("retained"), v_at_3);
        assert_eq!(fs.retained_partition(1, p).expect("retained"), v_at_12);
    }

    #[test]
    fn partition_zero_carries_metadata() {
        let mut a = fs();
        let mut b = fs();
        create(&mut a, ROOT_FH, "x");
        create(&mut b, ROOT_FH, "x");
        assert_eq!(a.partition_digest(0), b.partition_digest(0));
        // Advance only b's clock: partition 0 must diverge even though
        // both hold the same inodes afterwards.
        create(&mut b, ROOT_FH, "y");
        b.apply(&NfsOp::Remove {
            dir: ROOT_FH,
            name: "y".into(),
        });
        assert_ne!(a.partition_digest(0), b.partition_digest(0));
        // Transferring partition 0 carries the metadata across.
        let bytes = b.encode_partition(0);
        a.restore_partition(0, &bytes, &b.partition_digest(0))
            .expect("restore");
        assert_eq!(a.partition_digest(0), b.partition_digest(0));
    }

    #[test]
    fn data_bytes_accounting() {
        let mut fs = fs();
        let f = create(&mut fs, ROOT_FH, "f");
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 0,
            data: vec![1; 100],
        });
        assert_eq!(fs.data_bytes(), 100);
        fs.apply(&NfsOp::Write {
            fh: f,
            offset: 50,
            data: vec![1; 100],
        });
        assert_eq!(fs.data_bytes(), 150, "overlap counted once");
        fs.apply(&NfsOp::Remove {
            dir: ROOT_FH,
            name: "f".into(),
        });
        assert_eq!(fs.data_bytes(), 0);
    }
}
