//! A model of the Linux kernel NFS client used by the benchmarks.
//!
//! The paper's file-system results are shaped by the *client* as much as
//! the server: the benchmark code ran over the standard kernel NFS client
//! with "UDP transport, 3 KB buffers, write-back client caching, and
//! attribute caching". This module models those pieces: a lookup (path →
//! handle) cache, an attribute cache, a whole-file data cache, and 3 KB
//! read/write chunking.
//!
//! The model is transport-agnostic: callers feed it file-level
//! [`FileAction`]s and it yields one NFS RPC at a time via [`Step`];
//! responses come back through [`NfsClientModel::next`]. The same model
//! drives BFS (through the BFT client), NO-REP, and NFS-STD.

use crate::ops::{Fattr, Fh, NfsOp, NfsResult, ROOT_FH};
use std::collections::HashMap;

/// Client-side configuration.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub struct NfsClientConfig {
    /// Read/write transfer size ("3 KB buffers").
    pub chunk_bytes: usize,
    /// Whether attributes are cached.
    pub attr_cache: bool,
    /// Bytes of file data the client caches (whole-file granularity).
    pub data_cache_bytes: u64,
}

impl Default for NfsClientConfig {
    fn default() -> Self {
        NfsClientConfig {
            chunk_bytes: 3 * 1024,
            attr_cache: true,
            data_cache_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A file-level action the workload wants performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileAction {
    /// Create a directory (parents must exist).
    Mkdir(String),
    /// Create a file and write `size` zero-filled bytes.
    CreateFile(String, u64),
    /// Read a whole file.
    ReadFile(String),
    /// Append `bytes` zero-filled bytes.
    Append(String, u64),
    /// Fetch attributes.
    Stat(String),
    /// Remove a file.
    Remove(String),
    /// Remove an empty directory.
    RemoveDir(String),
    /// List a directory.
    ListDir(String),
}

/// What the workload should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Issue this RPC (read-only flag included) and call
    /// [`NfsClientModel::next`] with the response.
    Rpc(NfsOp),
    /// The action finished without needing (more) RPCs. `served_from_cache`
    /// is true when the client caches absorbed it entirely.
    Done {
        /// True if no RPC at all was needed.
        served_from_cache: bool,
        /// True if the action ultimately failed (e.g. ENOENT).
        failed: bool,
    },
}

/// Aggregate client-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// RPCs issued.
    pub rpcs: u64,
    /// Lookup RPCs suppressed by the handle cache.
    pub lookup_hits: u64,
    /// GetAttr RPCs suppressed by the attribute cache.
    pub attr_hits: u64,
    /// Read RPCs suppressed by the data cache (whole files).
    pub data_hits: u64,
    /// Actions completed.
    pub actions: u64,
}

#[derive(Debug, Clone)]
enum After {
    Create { name: String, size: u64 },
    Mkdir { name: String },
    Remove { name: String },
    RemoveDir { name: String },
    Stat,
    ReadFile,
    Append { bytes: u64 },
    ListDir,
}

#[derive(Debug, Clone)]
enum Exec {
    Idle,
    /// Resolving `parts[idx..]` starting at directory `dir`; the prefix
    /// resolved so far is `prefix`.
    Resolving {
        parts: Vec<String>,
        idx: usize,
        dir: Fh,
        prefix: String,
        full_path: String,
        then: After,
    },
    /// Waiting for the response to a namespace RPC that ends the action.
    Finishing,
    /// Waiting for a Create response, then writing.
    Creating {
        path: String,
        size: u64,
    },
    /// Waiting for a GetAttr response before reading/appending.
    Attring {
        path: String,
        fh: Fh,
        then: After,
    },
    /// Writing chunks.
    Writing {
        fh: Fh,
        offset: u64,
        remaining: u64,
        path: String,
    },
    /// Reading chunks.
    Reading {
        fh: Fh,
        offset: u64,
        size: u64,
        path: String,
    },
}

/// The NFS client cache model.
#[derive(Debug, Clone)]
pub struct NfsClientModel {
    cfg: NfsClientConfig,
    /// Path prefix → handle.
    fh_cache: HashMap<String, Fh>,
    /// Handle → cached attributes.
    attrs: HashMap<Fh, Fattr>,
    /// Handle → cached whole file size.
    data_cache: HashMap<Fh, u64>,
    cached_bytes: u64,
    exec: Exec,
    /// Full path to associate with the handle returned by an in-flight
    /// Mkdir (only meaningful while `Exec::Finishing` is active).
    pending_path: Option<String>,
    /// Statistics.
    pub stats: ClientStats,
}

impl NfsClientModel {
    /// Creates a model with the given configuration.
    pub fn new(cfg: NfsClientConfig) -> NfsClientModel {
        NfsClientModel {
            cfg,
            fh_cache: HashMap::new(),
            attrs: HashMap::new(),
            data_cache: HashMap::new(),
            cached_bytes: 0,
            exec: Exec::Idle,
            pending_path: None,
            stats: ClientStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NfsClientConfig {
        &self.cfg
    }

    fn split(path: &str) -> Vec<String> {
        path.split('/')
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect()
    }

    fn note_attr(&mut self, attr: Fattr) {
        if self.cfg.attr_cache {
            self.attrs.insert(attr.fh, attr);
        }
    }

    fn cache_data(&mut self, fh: Fh, size: u64) {
        if size > self.cfg.data_cache_bytes {
            return;
        }
        // Crude eviction: drop everything when full. Whole-file LRU would
        // change little for these workloads.
        if self.cached_bytes + size > self.cfg.data_cache_bytes {
            self.data_cache.clear();
            self.cached_bytes = 0;
        }
        if self.data_cache.insert(fh, size).is_none() {
            self.cached_bytes += size;
        }
    }

    fn invalidate_path(&mut self, path: &str) {
        if let Some(fh) = self.fh_cache.remove(path) {
            self.attrs.remove(&fh);
            if let Some(sz) = self.data_cache.remove(&fh) {
                self.cached_bytes -= sz;
            }
        }
        // Drop any cached descendants.
        let prefix = format!("{path}/");
        let stale: Vec<String> = self
            .fh_cache
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in stale {
            if let Some(fh) = self.fh_cache.remove(&k) {
                self.attrs.remove(&fh);
                if let Some(sz) = self.data_cache.remove(&fh) {
                    self.cached_bytes -= sz;
                }
            }
        }
    }

    fn done(&mut self, served_from_cache: bool, failed: bool) -> Step {
        self.exec = Exec::Idle;
        self.stats.actions += 1;
        Step::Done {
            served_from_cache,
            failed,
        }
    }

    fn rpc(&mut self, op: NfsOp) -> Step {
        self.stats.rpcs += 1;
        Step::Rpc(op)
    }

    /// Begins an action.
    ///
    /// # Panics
    ///
    /// Panics if an action is already in progress.
    pub fn begin(&mut self, action: FileAction) -> Step {
        assert!(
            matches!(self.exec, Exec::Idle),
            "action already in progress"
        );
        let (path, then) = match action {
            FileAction::Mkdir(p) => {
                let name = Self::split(&p).pop().unwrap_or_default();
                (p, After::Mkdir { name })
            }
            FileAction::CreateFile(p, size) => {
                let name = Self::split(&p).pop().unwrap_or_default();
                (p, After::Create { name, size })
            }
            FileAction::Remove(p) => {
                let name = Self::split(&p).pop().unwrap_or_default();
                (p, After::Remove { name })
            }
            FileAction::RemoveDir(p) => {
                let name = Self::split(&p).pop().unwrap_or_default();
                (p, After::RemoveDir { name })
            }
            FileAction::Stat(p) => (p, After::Stat),
            FileAction::ReadFile(p) => (p, After::ReadFile),
            FileAction::Append(p, bytes) => (p, After::Append { bytes }),
            FileAction::ListDir(p) => (p, After::ListDir),
        };
        let mut parts = Self::split(&path);
        // Parent-resolving actions stop one component short.
        let parent_only = matches!(
            then,
            After::Create { .. }
                | After::Mkdir { .. }
                | After::Remove { .. }
                | After::RemoveDir { .. }
        );
        if parent_only && !parts.is_empty() {
            parts.pop();
        }
        self.exec = Exec::Resolving {
            parts,
            idx: 0,
            dir: ROOT_FH,
            prefix: String::new(),
            full_path: path,
            then,
        };
        self.advance_resolution()
    }

    /// Continues resolution using the lookup cache until an RPC is needed
    /// or the target phase begins.
    fn advance_resolution(&mut self) -> Step {
        loop {
            let Exec::Resolving {
                parts,
                idx,
                dir,
                prefix,
                full_path,
                then,
            } = &mut self.exec
            else {
                unreachable!("advance_resolution outside Resolving");
            };
            if *idx == parts.len() {
                let dir = *dir;
                let full_path = full_path.clone();
                let then = then.clone();
                return self.start_target(dir, full_path, then);
            }
            let next_prefix = if prefix.is_empty() {
                parts[*idx].clone()
            } else {
                format!("{prefix}/{}", parts[*idx])
            };
            if let Some(&fh) = self.fh_cache.get(&next_prefix) {
                self.stats.lookup_hits += 1;
                let Exec::Resolving {
                    idx, dir, prefix, ..
                } = &mut self.exec
                else {
                    unreachable!()
                };
                *dir = fh;
                *idx += 1;
                *prefix = next_prefix;
                continue;
            }
            let op = NfsOp::Lookup {
                dir: *dir,
                name: parts[*idx].clone(),
            };
            return self.rpc(op);
        }
    }

    fn start_target(&mut self, dir: Fh, full_path: String, then: After) -> Step {
        match then {
            After::Mkdir { name } => {
                self.exec = Exec::Finishing;
                self.pending_path = Some(full_path);
                self.rpc(NfsOp::Mkdir { dir, name })
            }
            After::Create { name, size } => {
                self.exec = Exec::Creating {
                    path: full_path,
                    size,
                };
                self.rpc(NfsOp::Create { dir, name })
            }
            After::Remove { name } => {
                self.invalidate_path(&full_path);
                self.exec = Exec::Finishing;
                self.pending_path = None;
                self.rpc(NfsOp::Remove { dir, name })
            }
            After::RemoveDir { name } => {
                self.invalidate_path(&full_path);
                self.exec = Exec::Finishing;
                self.pending_path = None;
                self.rpc(NfsOp::Rmdir { dir, name })
            }
            After::Stat => {
                // `dir` is the resolved target here.
                if self.cfg.attr_cache && self.attrs.contains_key(&dir) {
                    self.stats.attr_hits += 1;
                    return self.done(true, false);
                }
                self.exec = Exec::Finishing;
                self.pending_path = None;
                self.rpc(NfsOp::GetAttr { fh: dir })
            }
            After::ListDir => {
                self.exec = Exec::Finishing;
                self.pending_path = None;
                self.rpc(NfsOp::ReadDir { dir })
            }
            After::ReadFile => {
                let fh = dir;
                if let Some(&size) = self.data_cache.get(&fh) {
                    self.stats.data_hits += 1;
                    let _ = size;
                    return self.done(true, false);
                }
                if let Some(attr) = self.attrs.get(&fh).copied() {
                    self.stats.attr_hits += 1;
                    return self.begin_read(fh, attr.size, full_path);
                }
                self.exec = Exec::Attring {
                    path: full_path,
                    fh,
                    then: After::ReadFile,
                };
                self.rpc(NfsOp::GetAttr { fh })
            }
            After::Append { bytes } => {
                let fh = dir;
                if let Some(attr) = self.attrs.get(&fh).copied() {
                    self.stats.attr_hits += 1;
                    return self.begin_write(fh, attr.size, bytes, full_path);
                }
                self.exec = Exec::Attring {
                    path: full_path,
                    fh,
                    then: After::Append { bytes },
                };
                self.rpc(NfsOp::GetAttr { fh })
            }
        }
    }

    fn begin_read(&mut self, fh: Fh, size: u64, path: String) -> Step {
        if size == 0 {
            self.cache_data(fh, 0);
            return self.done(false, false);
        }
        self.exec = Exec::Reading {
            fh,
            offset: 0,
            size,
            path,
        };
        let count = self.cfg.chunk_bytes.min(size as usize) as u32;
        self.rpc(NfsOp::Read {
            fh,
            offset: 0,
            count,
        })
    }

    fn begin_write(&mut self, fh: Fh, offset: u64, bytes: u64, path: String) -> Step {
        if bytes == 0 {
            return self.done(false, false);
        }
        let chunk = (self.cfg.chunk_bytes as u64).min(bytes);
        self.exec = Exec::Writing {
            fh,
            offset: offset + chunk,
            remaining: bytes - chunk,
            path,
        };
        self.rpc(NfsOp::Write {
            fh,
            offset,
            data: vec![0u8; chunk as usize],
        })
    }

    /// Feeds an RPC response; returns the next step.
    ///
    /// # Panics
    ///
    /// Panics if no action is in progress.
    pub fn next(&mut self, response: &NfsResult) -> Step {
        match std::mem::replace(&mut self.exec, Exec::Idle) {
            Exec::Idle => panic!("next() with no action in progress"),
            Exec::Resolving {
                parts,
                idx,
                dir,
                prefix,
                full_path,
                then,
            } => match response {
                NfsResult::Handle(attr) => {
                    let next_prefix = if prefix.is_empty() {
                        parts[idx].clone()
                    } else {
                        format!("{prefix}/{}", parts[idx])
                    };
                    self.fh_cache.insert(next_prefix.clone(), attr.fh);
                    self.note_attr(*attr);
                    self.exec = Exec::Resolving {
                        parts,
                        idx: idx + 1,
                        dir: attr.fh,
                        prefix: next_prefix,
                        full_path,
                        then,
                    };
                    // Keep `dir` around for lint-free destructuring.
                    let _ = dir;
                    self.advance_resolution()
                }
                _ => self.done(false, true),
            },
            Exec::Finishing => {
                let failed = response.is_err();
                if !failed {
                    if let Some(attr) = response.attr().copied() {
                        self.note_attr(attr);
                        if let Some(path) = self.pending_path.take() {
                            self.fh_cache.insert(path, attr.fh);
                        }
                    }
                }
                self.pending_path = None;
                self.done(false, failed)
            }
            Exec::Creating { path, size } => match response {
                NfsResult::Handle(attr) => {
                    self.fh_cache.insert(path.clone(), attr.fh);
                    self.note_attr(*attr);
                    // Creating implies the client now holds the data.
                    self.cache_data(attr.fh, size);
                    self.begin_write(attr.fh, 0, size, path)
                }
                _ => self.done(false, true),
            },
            Exec::Attring { path, fh, then } => match response {
                NfsResult::Attr(attr) => {
                    self.note_attr(*attr);
                    match then {
                        After::ReadFile => self.begin_read(fh, attr.size, path),
                        After::Append { bytes } => self.begin_write(fh, attr.size, bytes, path),
                        _ => self.done(false, true),
                    }
                }
                _ => self.done(false, true),
            },
            Exec::Writing {
                fh,
                offset,
                remaining,
                path,
            } => {
                if response.is_err() {
                    return self.done(false, true);
                }
                if let Some(attr) = response.attr().copied() {
                    self.note_attr(attr);
                }
                if remaining == 0 {
                    return self.done(false, false);
                }
                let chunk = (self.cfg.chunk_bytes as u64).min(remaining);
                self.exec = Exec::Writing {
                    fh,
                    offset: offset + chunk,
                    remaining: remaining - chunk,
                    path,
                };
                self.rpc(NfsOp::Write {
                    fh,
                    offset,
                    data: vec![0u8; chunk as usize],
                })
            }
            Exec::Reading {
                fh,
                offset,
                size,
                path,
            } => match response {
                NfsResult::Data { data, attr } => {
                    self.note_attr(*attr);
                    let new_offset = offset + data.len() as u64;
                    let eof = data.len() < self.cfg.chunk_bytes || new_offset >= size;
                    if eof {
                        self.cache_data(fh, size);
                        return self.done(false, false);
                    }
                    let count = self.cfg.chunk_bytes.min((size - new_offset) as usize) as u32;
                    self.exec = Exec::Reading {
                        fh,
                        offset: new_offset,
                        size,
                        path,
                    };
                    self.rpc(NfsOp::Read {
                        fh,
                        offset: new_offset,
                        count,
                    })
                }
                _ => self.done(false, true),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::service::FsService;

    /// Runs actions against a local FsService, returning per-action RPC
    /// counts.
    fn run(model: &mut NfsClientModel, svc: &mut FsService, actions: &[FileAction]) -> Vec<u64> {
        let mut counts = Vec::new();
        for action in actions {
            let before = model.stats.rpcs;
            let mut step = model.begin(action.clone());
            loop {
                match step {
                    Step::Rpc(op) => {
                        use bft_core::wire::Wire;
                        let res_bytes = svc.apply_encoded(&op.to_bytes());
                        let res = NfsResult::from_bytes(&res_bytes).expect("decodes");
                        step = model.next(&res);
                    }
                    Step::Done { failed, .. } => {
                        assert!(!failed, "action failed: {action:?}");
                        break;
                    }
                }
            }
            counts.push(model.stats.rpcs - before);
        }
        counts
    }

    fn setup() -> (NfsClientModel, FsService) {
        (
            NfsClientModel::new(NfsClientConfig::default()),
            FsService::in_memory(),
        )
    }

    #[test]
    fn create_writes_in_chunks() {
        let (mut model, mut svc) = setup();
        let counts = run(
            &mut model,
            &mut svc,
            &[FileAction::CreateFile("f".into(), 7000)],
        );
        // Create + ceil(7000/3072) = 3 writes.
        assert_eq!(counts, vec![4]);
    }

    #[test]
    fn lookup_cache_suppresses_repeat_resolution() {
        let (mut model, mut svc) = setup();
        let counts = run(
            &mut model,
            &mut svc,
            &[
                FileAction::Mkdir("a".into()),
                FileAction::Mkdir("a/b".into()),
                FileAction::CreateFile("a/b/f".into(), 100),
                FileAction::Stat("a/b/f".into()),
            ],
        );
        // mkdir a: 1 rpc; mkdir a/b: cached a → 1 rpc; create: cached a/b →
        // create+write = 2; stat: attrs cached from create → 0.
        assert_eq!(counts, vec![1, 1, 2, 0]);
        assert!(model.stats.lookup_hits > 0);
        assert!(model.stats.attr_hits > 0);
    }

    #[test]
    fn data_cache_absorbs_reread() {
        let (mut model, mut svc) = setup();
        let counts = run(
            &mut model,
            &mut svc,
            &[
                FileAction::CreateFile("f".into(), 5000),
                FileAction::ReadFile("f".into()),
                FileAction::ReadFile("f".into()),
            ],
        );
        assert_eq!(counts[1], 0, "file written by us is cached");
        assert_eq!(counts[2], 0);
        assert_eq!(model.stats.data_hits, 2);
    }

    #[test]
    fn cold_read_fetches_chunks() {
        let (mut model, mut svc) = setup();
        run(
            &mut model,
            &mut svc,
            &[FileAction::CreateFile("f".into(), 6200)],
        );
        // A fresh client has no caches.
        let mut cold = NfsClientModel::new(NfsClientConfig::default());
        let counts = run(&mut cold, &mut svc, &[FileAction::ReadFile("f".into())]);
        // lookup (whose reply carries the attributes, so no GetAttr) +
        // ceil(6200/3072) = 3 reads.
        assert_eq!(counts, vec![4]);
    }

    #[test]
    fn remove_invalidates_caches() {
        let (mut model, mut svc) = setup();
        run(
            &mut model,
            &mut svc,
            &[
                FileAction::CreateFile("f".into(), 100),
                FileAction::Remove("f".into()),
                FileAction::CreateFile("f".into(), 100),
            ],
        );
        // The third action must re-create rather than reuse the stale fh.
        let counts = run(&mut model, &mut svc, &[FileAction::ReadFile("f".into())]);
        assert_eq!(counts[0], 0, "fresh create cached the data again");
    }

    #[test]
    fn listdir_and_append() {
        let (mut model, mut svc) = setup();
        let counts = run(
            &mut model,
            &mut svc,
            &[
                FileAction::Mkdir("d".into()),
                FileAction::CreateFile("d/f".into(), 1000),
                FileAction::Append("d/f".into(), 4000),
                FileAction::ListDir("d".into()),
            ],
        );
        // Append: attrs cached → ceil(4000/3072)=2 writes; listdir: 1.
        assert_eq!(counts[2], 2);
        assert_eq!(counts[3], 1);
    }

    #[test]
    fn removedir_after_emptying() {
        let (mut model, mut svc) = setup();
        let counts = run(
            &mut model,
            &mut svc,
            &[
                FileAction::Mkdir("tmp".into()),
                FileAction::CreateFile("tmp/x".into(), 10),
                FileAction::Remove("tmp/x".into()),
                FileAction::RemoveDir("tmp".into()),
            ],
        );
        assert_eq!(counts.len(), 4);
        // The directory is really gone: stat must fail.
        let mut step = model.begin(FileAction::Stat("tmp".into()));
        loop {
            match step {
                Step::Rpc(op) => {
                    use bft_core::wire::Wire;
                    let res_bytes = svc.apply_encoded(&op.to_bytes());
                    let res = NfsResult::from_bytes(&res_bytes).expect("decodes");
                    step = model.next(&res);
                }
                Step::Done { failed, .. } => {
                    assert!(failed);
                    break;
                }
            }
        }
    }

    #[test]
    fn attr_cache_can_be_disabled() {
        let mut model = NfsClientModel::new(NfsClientConfig {
            attr_cache: false,
            data_cache_bytes: 0,
            ..NfsClientConfig::default()
        });
        let mut svc = FsService::in_memory();
        run(
            &mut model,
            &mut svc,
            &[
                FileAction::CreateFile("f".into(), 10),
                FileAction::Stat("f".into()),
                FileAction::Stat("f".into()),
            ],
        );
        assert_eq!(model.stats.attr_hits, 0, "no cache, no hits");
        assert_eq!(model.stats.data_hits, 0);
    }

    #[test]
    fn missing_file_fails_cleanly() {
        let (mut model, mut svc) = setup();
        let mut step = model.begin(FileAction::ReadFile("ghost".into()));
        loop {
            match step {
                Step::Rpc(op) => {
                    use bft_core::wire::Wire;
                    let res_bytes = svc.apply_encoded(&op.to_bytes());
                    let res = NfsResult::from_bytes(&res_bytes).expect("decodes");
                    step = model.next(&res);
                }
                Step::Done { failed, .. } => {
                    assert!(failed);
                    break;
                }
            }
        }
    }
}
