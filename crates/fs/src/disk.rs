//! Disk and buffer-cache cost model for the file servers.
//!
//! The testbed's server stored files on a Quantum Atlas 10K 18WLS. Which
//! operations touch the disk *synchronously* is exactly what separates the
//! three systems the paper compares:
//!
//! - **BFS** achieves stability through replication; the disk is written
//!   in the background and only limits performance when the working set
//!   outgrows memory (the paper calls out "a significant number of disk
//!   writes at the server in Andrew500").
//! - **NO-REP** is BFS without replication — same in-memory behaviour.
//! - **NFS-STD** (Linux kernel NFS + Ext2fs) *should* stabilize data and
//!   metadata before replying but incorrectly replies early for data
//!   writes; its metadata handling still causes many more disk accesses,
//!   which is why PostMark hits it so hard.

/// A simple seek + transfer disk model.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average positioning time (seek + rotational latency).
    pub seek_ns: u64,
    /// Transfer time per byte.
    pub per_byte_ns: f64,
}

impl DiskModel {
    /// The Quantum Atlas 10K: 10 000 rpm (≈3 ms rotational + ≈5 ms seek
    /// average ≈ 6 ms positioning) with ≈25 MB/s sustained transfer.
    pub const ATLAS_10K: DiskModel = DiskModel {
        seek_ns: 6_000_000,
        per_byte_ns: 40.0,
    };

    /// Time for one random access of `bytes`.
    pub fn access_ns(&self, bytes: usize) -> u64 {
        self.seek_ns + (bytes as f64 * self.per_byte_ns) as u64
    }

    /// Time for a sequential transfer of `bytes` (no positioning).
    pub fn stream_ns(&self, bytes: usize) -> u64 {
        (bytes as f64 * self.per_byte_ns) as u64
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::ATLAS_10K
    }
}

/// Which server variant is being modeled.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// BFS replica: stability through replication; background disk.
    Bfs,
    /// BFS without replication: same server-side cost structure.
    NoRep,
    /// The Linux kernel NFS server over Ext2fs.
    NfsStd,
}

/// Per-operation server cost model.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct FsCostModel {
    /// Which system is being modeled.
    pub mode: ServerMode,
    /// Server memory available for caching file data; once the working
    /// set exceeds this, reads and writes start paying disk time.
    pub mem_bytes: u64,
    /// The disk.
    pub disk: DiskModel,
    /// Base CPU cost of any NFS operation (dispatch, inode lookup).
    pub base_cpu_ns: u64,
    /// Per-byte CPU cost of moving file data (copy + checksum).
    pub per_byte_cpu_ns: f64,
    /// Fraction (0..=1024, in 1/1024 units) of metadata operations that
    /// cause a synchronous metadata disk access in NFS-STD.
    pub nfsstd_meta_sync_per_1024: u32,
}

impl FsCostModel {
    /// Model for the given server variant with the paper's 512 MB server.
    pub fn new(mode: ServerMode) -> FsCostModel {
        FsCostModel {
            mode,
            // Of the 512 MB, the OS, daemons and protocol buffers take a
            // share; roughly 400 MB is available for caching file data.
            mem_bytes: 400 * 1024 * 1024,
            disk: DiskModel::ATLAS_10K,
            base_cpu_ns: 20_000,
            per_byte_cpu_ns: 8.0,
            nfsstd_meta_sync_per_1024: 128,
        }
    }

    /// CPU time the server spends executing an operation that moves
    /// `data_bytes` of file data.
    pub fn cpu_ns(&self, data_bytes: usize) -> u64 {
        self.base_cpu_ns + (data_bytes as f64 * self.per_byte_cpu_ns) as u64
    }

    /// Synchronous disk time charged to an operation.
    ///
    /// `is_meta` marks namespace operations, `data_bytes` is the data
    /// moved, `resident_bytes` the current file-data working set, and
    /// `op_index` a deterministic per-server operation counter used to
    /// spread amortized costs without randomness.
    pub fn sync_disk_ns(
        &self,
        is_meta: bool,
        is_write: bool,
        data_bytes: usize,
        resident_bytes: u64,
        op_index: u64,
    ) -> u64 {
        let over_memory = resident_bytes > self.mem_bytes;
        match self.mode {
            ServerMode::Bfs | ServerMode::NoRep => {
                // Disk touches the critical path only under memory
                // pressure: the background writer can no longer keep up
                // and dirty data must be evicted synchronously.
                if over_memory && is_write && data_bytes > 0 {
                    // Evictions are batched: charge a positioning cost on
                    // every 16th write plus streaming for the data.
                    let position = if op_index.is_multiple_of(16) {
                        self.disk.seek_ns
                    } else {
                        0
                    };
                    position + self.disk.stream_ns(data_bytes)
                } else {
                    0
                }
            }
            ServerMode::NfsStd => {
                let mut ns = 0;
                // Metadata updates hit Ext2fs synchronously for a large
                // fraction of operations (directory blocks + inode
                // bitmaps); coalescing catches the rest.
                if is_meta
                    && (op_index.wrapping_mul(0x9e37) % 1024)
                        < self.nfsstd_meta_sync_per_1024 as u64
                {
                    ns += self.disk.access_ns(4096);
                }
                // Data writes incorrectly return before stabilization, so
                // they cost no synchronous disk time until memory
                // pressure forces eviction — same as the others.
                if over_memory && is_write && data_bytes > 0 {
                    let position = if op_index.is_multiple_of(16) {
                        self.disk.seek_ns
                    } else {
                        0
                    };
                    ns += position + self.disk.stream_ns(data_bytes);
                }
                ns
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_times() {
        let d = DiskModel::ATLAS_10K;
        assert_eq!(d.access_ns(0), 6_000_000);
        assert!(d.access_ns(4096) > d.access_ns(0));
        assert!(d.stream_ns(1_000_000) < d.access_ns(1_000_000));
    }

    #[test]
    fn bfs_in_memory_has_no_sync_disk() {
        let m = FsCostModel::new(ServerMode::Bfs);
        assert_eq!(m.sync_disk_ns(true, false, 0, 0, 1), 0);
        assert_eq!(m.sync_disk_ns(false, true, 8192, 1024, 2), 0);
    }

    #[test]
    fn memory_pressure_forces_disk_writes() {
        let m = FsCostModel::new(ServerMode::Bfs);
        let over = m.mem_bytes + 1;
        assert!(m.sync_disk_ns(false, true, 8192, over, 16) > 0);
        assert_eq!(
            m.sync_disk_ns(false, false, 8192, over, 16),
            0,
            "reads of cached data stay free"
        );
    }

    #[test]
    fn nfsstd_pays_for_metadata() {
        let m = FsCostModel::new(ServerMode::NfsStd);
        let total: u64 = (0..1024)
            .map(|i| m.sync_disk_ns(true, false, 0, 0, i))
            .sum();
        let hits = total / m.disk.access_ns(4096);
        // Roughly the configured fraction of ops sync.
        assert!((80..320).contains(&hits), "hits {hits}");
        // BFS pays nothing for the same ops.
        let bfs = FsCostModel::new(ServerMode::Bfs);
        assert_eq!(
            (0..1024)
                .map(|i| bfs.sync_disk_ns(true, false, 0, 0, i))
                .sum::<u64>(),
            0
        );
    }

    #[test]
    fn cpu_scales_with_data() {
        let m = FsCostModel::new(ServerMode::Bfs);
        assert!(m.cpu_ns(4096) > m.cpu_ns(0));
        assert_eq!(m.cpu_ns(0), 20_000);
    }
}
