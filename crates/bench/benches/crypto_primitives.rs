//! Criterion micro-benchmarks of the crypto substrate: the host-side cost
//! of the primitives whose *simulated* cost the CPU model charges. The
//! relative shape (MAC ≪ digest ≪ RSA) is the paper's core argument.

use bft_crypto::keychain::KeyChain;
use bft_crypto::rsa::KeyPair;
use bft_crypto::umac::MacKey;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_md5(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5");
    for size in [64usize, 1024, 4096] {
        let data = vec![0xa5u8; size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| bft_crypto::digest(std::hint::black_box(d)))
        });
    }
    g.finish();
}

fn bench_umac(c: &mut Criterion) {
    let key = MacKey::from_bytes([7; 16]);
    let mut g = c.benchmark_group("umac");
    for size in [64usize, 1024, 4096] {
        let data = vec![0x5au8; size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| key.mac(std::hint::black_box(d), 42))
        });
    }
    g.finish();
}

fn bench_authenticator(c: &mut Criterion) {
    let mut kc = KeyChain::new(0, 4);
    let digest = *bft_crypto::digest(b"message").as_bytes();
    c.bench_function("authenticator_4_replicas", |b| {
        b.iter(|| kc.authenticate(std::hint::black_box(&digest)))
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng, 256);
    c.bench_function("rsa256_sign", |b| {
        b.iter(|| kp.sign(std::hint::black_box(b"new-key message")))
    });
    let sig = kp.sign(b"new-key message");
    c.bench_function("rsa256_verify", |b| {
        b.iter(|| {
            kp.public()
                .verify(std::hint::black_box(b"new-key message"), &sig)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_md5, bench_umac, bench_authenticator, bench_rsa
}
criterion_main!(benches);
