//! Figure 3: latency with f = 2 (7 replicas) vs f = 1 (4 replicas) as the
//! argument size grows.
//!
//! Paper claims: "the slowdown caused by increasing the number of replicas
//! to seven is low. The maximum slowdown is 30% for the read-write
//! operation and 26% for the read-only operation. Furthermore, the
//! slowdown decreases quickly as the argument or result size increases."

use bft_bench::{figure_header, observe, ratio, table_header, table_row, us};
use bft_core::config::Config;
use bft_workloads::harness::{bft_latency, OpShape};

fn main() {
    figure_header(
        "Figure 3",
        "latency vs argument size, f = 1 (4 replicas) vs f = 2 (7 replicas)",
        "f=2 costs at most ~30% (RW) / ~26% (RO), shrinking as sizes grow",
    );
    table_header(&[
        "arg B", "RW f=1", "RW f=2", "RW f2/f1", "RO f=1", "RO f=2", "RO f2/f1",
    ]);
    let samples = 60;
    let mut max_rw: f64 = 0.0;
    let mut last_rw = 0.0;
    for arg in [0usize, 256, 1024, 2048, 4096, 8192] {
        let rw1 = bft_latency(Config::new(1), OpShape::rw(arg, 8), samples);
        let rw2 = bft_latency(Config::new(2), OpShape::rw(arg, 8), samples);
        let ro1 = bft_latency(Config::new(1), OpShape::ro(arg, 8), samples);
        let ro2 = bft_latency(Config::new(2), OpShape::ro(arg, 8), samples);
        let r_rw = rw2.mean / rw1.mean;
        let r_ro = ro2.mean / ro1.mean;
        max_rw = max_rw.max(r_rw);
        last_rw = r_rw;
        table_row(&[
            arg.to_string(),
            us(rw1.mean),
            us(rw2.mean),
            ratio(r_rw),
            us(ro1.mean),
            us(ro2.mean),
            ratio(r_ro),
        ]);
    }
    observe(&format!(
        "max f=2 slowdown {} (paper ~1.30), falling to {} at 8 KB",
        ratio(max_rw),
        ratio(last_rw)
    ));
    assert!(max_rw < 1.6, "f=2 must stay cheap");
    assert!(last_rw < max_rw, "slowdown must shrink with size");
}
