//! Ablation (extension): the cost of proactive recovery.
//!
//! The paper notes "BFT can recover replicas proactively [4]" — the
//! companion OSDI '00 work measures its overhead. Here: 0/0 read-write
//! throughput as the per-replica recovery period shrinks, plus key-refresh
//! overhead alone.

use bft_bench::{figure_header, observe, ops, ratio, table_header, table_row};
use bft_core::config::Config;
use bft_sim::dur;
use bft_workloads::harness::{bft_throughput_windowed, OpShape};

fn throughput(cfg: Config) -> f64 {
    bft_throughput_windowed(cfg, 30, OpShape::rw(0, 0), dur::secs(2), dur::secs(10)).ops_per_sec
}

fn main() {
    figure_header(
        "Ablation",
        "0/0 throughput (30 clients) under proactive recovery and key refresh",
        "recovery costs little while the window of vulnerability stays well above catch-up time",
    );
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 64;
    cfg.log_window = 128;
    let baseline = throughput(cfg.clone());
    table_header(&["config", "ops/s", "vs baseline"]);
    table_row(&["no recovery".to_owned(), ops(baseline), ratio(1.0)]);

    // Key refresh at a paper-era cadence (tens of seconds): the RSA work
    // per NEW-KEY (one private op each side plus verifies) is expensive,
    // which is exactly why BFT uses public-key crypto *only* for this.
    let mut refresh_cfg = cfg.clone();
    refresh_cfg.key_refresh_interval_ns = dur::secs(5);
    let with_refresh = throughput(refresh_cfg);
    table_row(&[
        "keys @5s".to_owned(),
        ops(with_refresh),
        ratio(with_refresh / baseline),
    ]);

    let mut worst = f64::MAX;
    for period_ms in [20_000u64, 10_000, 5_000] {
        let mut rec_cfg = cfg.clone();
        rec_cfg.proactive_recovery_interval_ns = dur::millis(period_ms);
        let t = throughput(rec_cfg);
        worst = worst.min(t / baseline);
        table_row(&[
            format!("recover @{period_ms}ms"),
            ops(t),
            ratio(t / baseline),
        ]);
    }
    observe(&format!(
        "worst case {} of baseline at a 5 s per-replica recovery period",
        ratio(worst)
    ));
    assert!(worst > 0.5, "recovery must not halve throughput");
}
