//! Criterion micro-benchmarks of the wire codec hot paths: pre-prepare
//! encode/decode at a few batch shapes, and request digests.

use bft_core::messages::{batch_digest, AuthTag, BatchEntry, Msg, PrePrepare, Request};
use bft_core::wire::Wire;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn request(op_len: usize) -> Request {
    Request {
        client: 7,
        timestamp: 3,
        op: vec![0xab; op_len],
        read_only: false,
        replier: 1,
        auth: AuthTag::None,
    }
}

fn pre_prepare(batch: usize, op_len: usize) -> Msg {
    let entries: Vec<BatchEntry> = (0..batch)
        .map(|i| {
            let mut r = request(op_len);
            r.timestamp = i as u64;
            BatchEntry::Full(r)
        })
        .collect();
    let d = batch_digest(&entries);
    Msg::PrePrepare(PrePrepare {
        view: 1,
        seq: 42,
        entries,
        batch_digest: d,
        piggy_commits: vec![],
    })
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode_pre_prepare");
    for (batch, op_len) in [(1usize, 64usize), (16, 64), (64, 64), (8, 1024)] {
        let msg = pre_prepare(batch, op_len);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{batch}x{op_len}")),
            &msg,
            |b, m| b.iter(|| std::hint::black_box(m).to_bytes()),
        );
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_pre_prepare");
    for (batch, op_len) in [(1usize, 64usize), (64, 64)] {
        let bytes = pre_prepare(batch, op_len).to_bytes();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{batch}x{op_len}")),
            &bytes,
            |b, bs| b.iter(|| Msg::from_bytes(std::hint::black_box(bs)).expect("decodes")),
        );
    }
    g.finish();
}

fn bench_request_digest(c: &mut Criterion) {
    let req = request(4096);
    c.bench_function("request_digest_4k", |b| {
        b.iter(|| std::hint::black_box(&req).digest())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_encode, bench_decode, bench_request_digest
}
criterion_main!(benches);
