//! Figure 6: the request-batching optimization — 0/0 read-write
//! throughput with and without batching.
//!
//! Paper claims: "the throughput without batching grows with the number of
//! clients ... but the replicas' CPUs saturate for a small number of
//! clients because processing each of these requests requires a full
//! instance of the protocol. Our batching mechanism reduces both CPU and
//! network overhead under load without increasing the latency to process
//! requests in an unloaded system."

use bft_bench::{figure_header, observe, ops, ratio, table_header, table_row, us};
use bft_core::config::Config;
use bft_workloads::harness::{bft_latency, bft_throughput, OpShape};

fn no_batch() -> Config {
    let mut cfg = Config::new(1);
    cfg.opts.batching = false;
    cfg
}

fn main() {
    figure_header(
        "Figure 6",
        "throughput for operation 0/0 (read-write) vs clients, batching on/off",
        "without batching the CPUs saturate early; batching keeps scaling",
    );
    table_header(&["clients", "batched", "unbatched", "gain"]);
    let mut batched_peak = 0.0f64;
    let mut unbatched_peak = 0.0f64;
    for c in [1u32, 5, 10, 20, 50, 100, 200] {
        let with = bft_throughput(Config::new(1), c, OpShape::rw(0, 0));
        let without = bft_throughput(no_batch(), c, OpShape::rw(0, 0));
        batched_peak = batched_peak.max(with.ops_per_sec);
        unbatched_peak = unbatched_peak.max(without.ops_per_sec);
        table_row(&[
            c.to_string(),
            ops(with.ops_per_sec),
            ops(without.ops_per_sec),
            ratio(with.ops_per_sec / without.ops_per_sec),
        ]);
    }
    // Unloaded latency must not suffer.
    let lat_with = bft_latency(Config::new(1), OpShape::rw(0, 0), 50);
    let lat_without = bft_latency(no_batch(), OpShape::rw(0, 0), 50);
    observe(&format!(
        "peaks: batched {} vs unbatched {}; unloaded latency {} vs {} (batching must not hurt)",
        ops(batched_peak),
        ops(unbatched_peak),
        us(lat_with.mean),
        us(lat_without.mean)
    ));
    assert!(
        batched_peak > 1.5 * unbatched_peak,
        "batching must raise saturation throughput"
    );
    assert!(
        lat_with.mean < 1.15 * lat_without.mean,
        "batching must not add unloaded latency"
    );
}
