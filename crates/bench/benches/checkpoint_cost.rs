//! Extension: incremental hierarchical checkpointing.
//!
//! The paper keeps checkpoints cheap by digesting only the state
//! partitions modified since the previous checkpoint and folding the
//! changes up a tree of partition digests. This bench drives the real
//! replica stack over BFS filesystems of growing size (1x / 10x / 100x
//! files) with a workload that keeps touching the same few partitions,
//! and compares the simulated checkpoint digest CPU between the
//! incremental path and the full-recompute baseline
//! (`incremental_checkpoints = false`). The full cost grows linearly
//! with state size; the incremental cost tracks the working set.

use bft_bench::{figure_header, observe, ratio, table_header, table_row, us};
use bft_core::prelude::*;
use bft_core::wire::Wire;
use bft_fs::disk::ServerMode;
use bft_fs::ops::{NfsOp, ROOT_FH};
use bft_fs::service::FsService;

/// A pre-populated BFS service with `files` empty files under the root.
/// Applied outside the protocol so every replica starts from the same
/// state without paying agreement for the setup ops.
fn populated(files: u32) -> FsService {
    let mut svc = FsService::for_benchmarks(ServerMode::Bfs);
    for i in 0..files {
        svc.apply_encoded(
            &NfsOp::Create {
                dir: ROOT_FH,
                name: format!("f{i}"),
            }
            .to_bytes(),
        );
    }
    svc.commit_prefix(usize::MAX);
    svc
}

/// Submits `count` writes to the first created file, one at a time.
struct WriteDriver {
    remaining: u64,
    op: Vec<u8>,
}

impl WriteDriver {
    fn new(count: u64) -> WriteDriver {
        WriteDriver {
            remaining: count,
            op: NfsOp::Write {
                fh: 2,
                offset: 0,
                data: vec![7; 1024],
            }
            .to_bytes(),
        }
    }
}

impl ClientDriver for WriteDriver {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            api.submit(self.op.clone(), false);
        }
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _result: &[u8], _lat: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            api.submit(self.op.clone(), false);
        }
    }
}

/// Mean simulated checkpoint digest cost (ns per checkpoint) for a
/// cluster of replicas holding `files` files.
fn checkpoint_ns(files: u32, incremental: bool) -> f64 {
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 16;
    cfg.log_window = 32;
    cfg.incremental_checkpoints = incremental;
    let template = populated(files);
    let mut cluster = Cluster::new(31, NetConfig::SWITCHED_100MBPS, cfg, |_| template.clone());
    cluster.add_client(WriteDriver::new(96));
    cluster.run_for(dur::secs(60));
    let made = cluster.sim.metrics().counter("replica.checkpoints_made");
    let spent = cluster
        .sim
        .metrics()
        .counter("replica.checkpoint_digest_ns");
    assert!(made > 0, "no checkpoints happened");
    spent as f64 / made as f64
}

fn main() {
    figure_header(
        "Extension",
        "checkpoint digest CPU vs state size: full recompute vs incremental",
        "hierarchical state digests make checkpoint cost O(dirty), not O(state)",
    );
    table_header(&["files", "full/ckpt", "incr/ckpt", "speedup"]);
    let mut speedups = Vec::new();
    for files in [100u32, 1_000, 10_000] {
        let full = checkpoint_ns(files, false);
        let incr = checkpoint_ns(files, true);
        speedups.push(full / incr);
        table_row(&[files.to_string(), us(full), us(incr), ratio(full / incr)]);
    }
    observe(&format!(
        "incremental checkpoints win {} at 1x and {} at 100x state size",
        ratio(speedups[0]),
        ratio(speedups[2]),
    ));
    assert!(
        speedups[2] >= 5.0,
        "incremental must be at least 5x cheaper at 100x state (got {:.1}x)",
        speedups[2]
    );
    assert!(
        speedups.windows(2).all(|w| w[1] > w[0]),
        "the incremental advantage must grow with state size"
    );
}
