//! Section 4.4 (text): the tentative-execution optimization.
//!
//! Paper claims: "The optimization reduces latency by up to 27% with small
//! argument and result sizes but its benefit decreases quickly when sizes
//! increase. The impact of the tentative execution optimization on
//! throughput is insignificant."

use bft_bench::{figure_header, observe, ops, table_header, table_row, us};
use bft_core::config::Config;
use bft_workloads::harness::{bft_latency, bft_throughput, OpShape};

fn no_tentative() -> Config {
    let mut cfg = Config::new(1);
    cfg.opts.tentative_execution = false;
    cfg
}

fn main() {
    figure_header(
        "Section 4.4",
        "tentative execution: latency by size, and 0/0 throughput",
        "up to ~27% lower latency at small sizes, fading with size; throughput unchanged",
    );
    table_header(&["size B", "TE on", "TE off", "saving"]);
    let samples = 60;
    let mut small_saving = 0.0;
    let mut large_saving = 0.0;
    for (arg, result) in [(0usize, 0usize), (1024, 0), (4096, 0), (8192, 0)] {
        let on = bft_latency(Config::new(1), OpShape::rw(arg, result), samples);
        let off = bft_latency(no_tentative(), OpShape::rw(arg, result), samples);
        let saving = 1.0 - on.mean / off.mean;
        if arg == 0 {
            small_saving = saving;
        }
        large_saving = saving;
        table_row(&[
            arg.to_string(),
            us(on.mean),
            us(off.mean),
            format!("{:.0}%", saving * 100.0),
        ]);
    }
    let thr_on = bft_throughput(Config::new(1), 100, OpShape::rw(0, 0));
    let thr_off = bft_throughput(no_tentative(), 100, OpShape::rw(0, 0));
    observe(&format!(
        "small-op saving {:.0}% (paper ~27%), 8 KB saving {:.0}%; 0/0 throughput {} vs {} (insignificant change)",
        small_saving * 100.0,
        large_saving * 100.0,
        ops(thr_on.ops_per_sec),
        ops(thr_off.ops_per_sec),
    ));
    assert!(
        small_saving > 0.10,
        "tentative execution must cut small-op latency"
    );
    assert!(large_saving < small_saving, "benefit must fade with size");
    let thr_delta = (thr_on.ops_per_sec - thr_off.ops_per_sec).abs() / thr_off.ops_per_sec;
    assert!(thr_delta < 0.25, "throughput impact should be modest");
}
