//! Figure 9: PostMark throughput (transactions/second) for BFS, NO-REP
//! and NFS-STD.
//!
//! Paper claims: "BFS's throughput is 47% lower than NO-REP's ... What is
//! interesting is that BFS's throughput is only 13% lower than NFS-STD's.
//! The higher overhead is offset by an increase in the number of disk
//! accesses performed by NFS-STD in this workload."

use bft_bench::{figure_header, observe, ops, ratio, table_header, table_row};
use bft_core::config::Config;
use bft_fs::client::NfsClientConfig;
use bft_fs::disk::ServerMode;
use bft_workloads::harness::{run_bfs, run_direct_fs};
use bft_workloads::postmark::{postmark_script, PostmarkConfig};

fn main() {
    figure_header(
        "Figure 9",
        "PostMark transactions per second",
        "BFS ~47% below NO-REP but only ~13% below NFS-STD (whose metadata hits the disk)",
    );
    let cfg = PostmarkConfig::default();
    let client_cfg = NfsClientConfig::default();
    let script = postmark_script(cfg);
    let bfs = run_bfs(Config::new(1), script.clone(), client_cfg);
    let norep = run_direct_fs(ServerMode::NoRep, script.clone(), client_cfg);
    let nfsstd = run_direct_fs(ServerMode::NfsStd, script, client_cfg);
    table_header(&["system", "txn/s", "vs NO-REP"]);
    for (name, run) in [("BFS", &bfs), ("NO-REP", &norep), ("NFS-STD", &nfsstd)] {
        table_row(&[
            name.to_owned(),
            ops(run.marks_per_sec()),
            ratio(run.marks_per_sec() / norep.marks_per_sec()),
        ]);
    }
    let below_norep = 1.0 - bfs.marks_per_sec() / norep.marks_per_sec();
    let below_nfsstd = 1.0 - bfs.marks_per_sec() / nfsstd.marks_per_sec();
    observe(&format!(
        "BFS {:.0}% below NO-REP (paper 47%), {:.0}% below NFS-STD (paper 13%)",
        below_norep * 100.0,
        below_nfsstd * 100.0
    ));
    assert!(
        below_norep > 0.2,
        "little client compute → high relative overhead"
    );
    assert!(
        below_nfsstd < below_norep,
        "NFS-STD's disk traffic must close most of the gap"
    );
}
