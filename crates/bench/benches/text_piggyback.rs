//! Section 4.4 (text): piggybacked commits.
//!
//! Paper claims: piggybacking has "a negligible impact on latency because
//! the commit phase is performed in the background (thanks to tentative
//! execution). It also has a small impact on throughput except when the
//! number of concurrent clients is small: it improves the throughput of
//! operation 0/0 by 33% with 5 clients but only by 3% with 200 clients."

use bft_bench::{figure_header, observe, ops, ratio, table_header, table_row, us};
use bft_core::config::Config;
use bft_workloads::harness::{bft_latency, bft_throughput, OpShape};

fn piggyback() -> Config {
    let mut cfg = Config::new(1);
    cfg.opts.piggyback_commits = true;
    cfg
}

fn main() {
    figure_header(
        "Section 4.4",
        "piggybacked commits: 0/0 throughput at few vs many clients",
        "helps most with few clients (+33% at 5), little at 200 (+3%)",
    );
    table_header(&["clients", "piggyback", "explicit", "gain"]);
    let mut gain_small = 0.0;
    let mut gain_large = 0.0;
    for c in [5u32, 20, 50, 200] {
        let on = bft_throughput(piggyback(), c, OpShape::rw(0, 0));
        let off = bft_throughput(Config::new(1), c, OpShape::rw(0, 0));
        let gain = on.ops_per_sec / off.ops_per_sec;
        if c == 5 {
            gain_small = gain;
        }
        if c == 200 {
            gain_large = gain;
        }
        table_row(&[
            c.to_string(),
            ops(on.ops_per_sec),
            ops(off.ops_per_sec),
            ratio(gain),
        ]);
    }
    let lat_on = bft_latency(piggyback(), OpShape::rw(0, 0), 50);
    let lat_off = bft_latency(Config::new(1), OpShape::rw(0, 0), 50);
    observe(&format!(
        "gain at 5 clients {} (paper 1.33x) vs 200 clients {} (paper 1.03x); latency {} vs {} (negligible)",
        ratio(gain_small),
        ratio(gain_large),
        us(lat_on.mean),
        us(lat_off.mean)
    ));
    assert!(
        gain_small > gain_large,
        "benefit must shrink as batching amortizes commits"
    );
    let lat_delta = (lat_on.mean - lat_off.mean).abs() / lat_off.mean;
    assert!(
        lat_delta < 0.10,
        "piggybacking must not change unloaded latency"
    );
}
