//! Figure 7: the separate-request-transmission optimization.
//!
//! Paper claims: "Separating request transmission reduces latency by up to
//! 40% because the request is sent only once and the primary and the
//! backups compute the request's digest in parallel. The other benefit is
//! improved throughput for large requests because it enables more requests
//! per batch."

use bft_bench::{figure_header, observe, ops, ratio, table_header, table_row, us};
use bft_core::config::Config;
use bft_workloads::harness::{bft_latency, bft_throughput, OpShape};

fn no_srt() -> Config {
    let mut cfg = Config::new(1);
    cfg.opts.separate_request_transmission = false;
    cfg
}

fn main() {
    figure_header(
        "Figure 7 (left)",
        "latency vs argument size, SRT on/off (result = 8 B)",
        "SRT cuts large-request latency by up to ~40%",
    );
    table_header(&["arg B", "SRT", "NO-SRT", "saving"]);
    let samples = 60;
    let mut best_saving = 0.0f64;
    for arg in [0usize, 1024, 4096, 8192] {
        let srt = bft_latency(Config::new(1), OpShape::rw(arg, 8), samples);
        let nosrt = bft_latency(no_srt(), OpShape::rw(arg, 8), samples);
        let saving = 1.0 - srt.mean / nosrt.mean;
        best_saving = best_saving.max(saving);
        table_row(&[
            arg.to_string(),
            us(srt.mean),
            us(nosrt.mean),
            format!("{:.0}%", saving * 100.0),
        ]);
    }

    figure_header(
        "Figure 7 (right)",
        "throughput for operation 4/0 vs clients, SRT on/off",
        "SRT improves large-request throughput (more requests per batch)",
    );
    table_header(&["clients", "SRT", "NO-SRT", "gain"]);
    let mut srt_peak = 0.0f64;
    let mut nosrt_peak = 0.0f64;
    for c in [10u32, 30, 50, 100] {
        let with = bft_throughput(Config::new(1), c, OpShape::rw(4096, 0));
        let without = bft_throughput(no_srt(), c, OpShape::rw(4096, 0));
        srt_peak = srt_peak.max(with.ops_per_sec);
        nosrt_peak = nosrt_peak.max(without.ops_per_sec);
        table_row(&[
            c.to_string(),
            ops(with.ops_per_sec),
            ops(without.ops_per_sec),
            ratio(with.ops_per_sec / without.ops_per_sec),
        ]);
    }
    observe(&format!(
        "best latency saving {:.0}% (paper: up to 40%); 4/0 peaks {} vs {}",
        best_saving * 100.0,
        ops(srt_peak),
        ops(nosrt_peak)
    ));
    assert!(best_saving > 0.15, "SRT must cut large-request latency");
    assert!(srt_peak > nosrt_peak, "SRT must raise 4/0 throughput");
}
