//! Figure 5: the digest-replies optimization — BFT vs BFT-NDR (no digest
//! replies).
//!
//! Paper claims: the optimization "reduces the latency to invoke
//! operations with large results significantly" and "BFT achieves a
//! throughput up to 3 times better than BFT-NDR", whose bottleneck is the
//! link bandwidth (at most ~3000 ops/s for 4 KB results).

use bft_bench::{figure_header, observe, ops, ratio, table_header, table_row, us};
use bft_core::config::Config;
use bft_workloads::harness::{bft_latency, bft_throughput, OpShape};

fn ndr_config() -> Config {
    let mut cfg = Config::new(1);
    cfg.opts.digest_replies = false;
    cfg
}

fn main() {
    figure_header(
        "Figure 5 (left)",
        "latency vs result size, BFT vs BFT-NDR (arg = 8 B)",
        "digest replies cut large-result latency; the gap grows with size",
    );
    table_header(&["result B", "BFT", "BFT-NDR", "NDR/BFT"]);
    let samples = 60;
    for result in [0usize, 1024, 4096, 8192] {
        let bft = bft_latency(Config::new(1), OpShape::rw(8, result), samples);
        let ndr = bft_latency(ndr_config(), OpShape::rw(8, result), samples);
        table_row(&[
            result.to_string(),
            us(bft.mean),
            us(ndr.mean),
            ratio(ndr.mean / bft.mean),
        ]);
    }

    figure_header(
        "Figure 5 (right)",
        "throughput for operation 0/4 vs clients, BFT vs BFT-NDR",
        "BFT-NDR link-capped at ~3000 ops/s; BFT up to 3x better",
    );
    table_header(&["clients", "BFT", "BFT-NDR", "BFT/NDR"]);
    let mut best = 0.0f64;
    for c in [10u32, 30, 50, 100, 200] {
        let bft = bft_throughput(Config::new(1), c, OpShape::rw(0, 4096));
        let ndr = bft_throughput(ndr_config(), c, OpShape::rw(0, 4096));
        let r = bft.ops_per_sec / ndr.ops_per_sec;
        best = best.max(r);
        table_row(&[
            c.to_string(),
            ops(bft.ops_per_sec),
            ops(ndr.ops_per_sec),
            ratio(r),
        ]);
    }
    observe(&format!(
        "BFT up to {} better than BFT-NDR (paper: up to 3x)",
        ratio(best)
    ));
    assert!(
        best > 1.5,
        "digest replies must lift 0/4 throughput substantially"
    );
}
