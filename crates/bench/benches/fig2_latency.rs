//! Figure 2: latency (and slowdown vs NO-REP) as the operation *result*
//! size grows, with the argument fixed at 8 B. Four replicas, one client.
//!
//! Paper claims: BFT is several times slower than NO-REP for tiny
//! operations, but the slowdown "decreases quickly as the operation
//! argument or result sizes increase", approaching an asymptote of 1.26;
//! the read-only optimization's absolute benefit is constant, so its
//! relative benefit vanishes with size.

use bft_bench::{figure_header, observe, ratio, table_header, table_row, us};
use bft_core::config::Config;
use bft_workloads::harness::{bft_latency, norep_latency, OpShape};

fn main() {
    figure_header(
        "Figure 2",
        "latency vs result size (arg = 8 B, 4 replicas, 1 client)",
        "slowdown starts high, falls toward ~1.26 as result size grows; RO < RW",
    );
    table_header(&[
        "result B", "BFT RW", "BFT RO", "NO-REP", "slow RW", "slow RO",
    ]);
    let samples = 60;
    let mut first_rw = 0.0;
    let mut last_rw = f64::MAX;
    for result in [0usize, 256, 1024, 2048, 4096, 6144, 8192] {
        let rw = bft_latency(Config::new(1), OpShape::rw(8, result), samples);
        let ro = bft_latency(Config::new(1), OpShape::ro(8, result), samples);
        let nr = norep_latency(OpShape::rw(8, result), samples);
        let slow_rw = rw.mean / nr.mean;
        let slow_ro = ro.mean / nr.mean;
        if result == 0 {
            first_rw = slow_rw;
        }
        last_rw = slow_rw;
        table_row(&[
            result.to_string(),
            us(rw.mean),
            us(ro.mean),
            us(nr.mean),
            ratio(slow_rw),
            ratio(slow_ro),
        ]);
    }
    observe(&format!(
        "slowdown falls from {} at 0 B to {} at 8 KB (paper asymptote 1.26)",
        ratio(first_rw),
        ratio(last_rw)
    ));
    assert!(last_rw < first_rw, "slowdown must decrease with size");
    assert!(
        last_rw < 2.0,
        "large-result slowdown must approach the asymptote"
    );
}
