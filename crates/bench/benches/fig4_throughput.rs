//! Figure 4: throughput vs number of clients for operations 0/0, 0/4 and
//! 4/0 (argument/result sizes in KB).
//!
//! Paper claims:
//! - 0/0: the bottleneck is the server CPU; NO-REP beats BFT, batching
//!   makes BFT throughput *grow* with the client count.
//! - 0/4: NO-REP is capped at ~3000 ops/s by its single transmit link;
//!   BFT exceeds it thanks to digest replies (paper: 6625 RW / 8987 RO).
//! - 4/0: both are bound by request transmission at ~3000 ops/s; BFT is
//!   11% (RW) / 2% (RO) below NO-REP's 2921.
//! - NO-REP has no data points beyond 15 clients "because of lost request
//!   messages" (no retransmission).
//!
//! Each (operation, client-count) cell is an independent deterministic
//! simulation, so the sweep fans out over scoped threads.

use bft_bench::{figure_header, observe, ops, table_header, table_row};
use bft_core::config::Config;
use bft_workloads::harness::{bft_throughput, norep_throughput, OpShape, Throughput};

struct Cell {
    rw: Throughput,
    ro: Throughput,
    norep: Throughput,
}

fn sweep(a: usize, b: usize, clients: &[u32]) -> Vec<Cell> {
    let mut cells: Vec<Option<Cell>> = Vec::new();
    cells.resize_with(clients.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (slot, &c) in cells.iter_mut().zip(clients) {
            scope.spawn(move |_| {
                *slot = Some(Cell {
                    rw: bft_throughput(Config::new(1), c, OpShape::rw(a, b)),
                    ro: bft_throughput(Config::new(1), c, OpShape::ro(a, b)),
                    norep: norep_throughput(c, OpShape::rw(a, b)),
                });
            });
        }
    })
    .expect("sweep threads");
    cells.into_iter().map(|c| c.expect("filled")).collect()
}

fn main() {
    let clients = [1u32, 5, 10, 15, 20, 30, 50, 100, 150, 200];
    let mut peak = [(0.0f64, 0.0f64, 0.0f64); 3];
    for (i, (a, b)) in [(0usize, 0usize), (0, 4096), (4096, 0)]
        .into_iter()
        .enumerate()
    {
        figure_header(
            "Figure 4",
            &format!("throughput vs clients, operation {}/{}", a / 1024, b / 1024),
            match i {
                0 => "CPU-bound; NO-REP > BFT; BFT grows with clients (batching)",
                1 => "NO-REP link-capped ~3000; BFT above it via digest replies",
                _ => "request-bandwidth-capped ~3000; BFT within 11% (RW) / 2% (RO)",
            },
        );
        table_header(&["clients", "BFT RW", "BFT RO", "NO-REP"]);
        for (cell, &c) in sweep(a, b, &clients).iter().zip(&clients) {
            // The paper plots no NO-REP points once requests are lost.
            let nr_cell = if cell.norep.drops > 0 {
                "(lost)".to_owned()
            } else {
                ops(cell.norep.ops_per_sec)
            };
            peak[i].0 = peak[i].0.max(cell.rw.ops_per_sec);
            peak[i].1 = peak[i].1.max(cell.ro.ops_per_sec);
            if cell.norep.drops == 0 {
                peak[i].2 = peak[i].2.max(cell.norep.ops_per_sec);
            }
            table_row(&[
                c.to_string(),
                ops(cell.rw.ops_per_sec),
                ops(cell.ro.ops_per_sec),
                nr_cell,
            ]);
        }
    }
    observe(&format!(
        "peaks — 0/0: RW {} RO {} NO-REP {}; 0/4: RW {} (paper 6625) RO {} (paper 8987) NO-REP {} (cap ~3000); 4/0: RW {} RO {} NO-REP {} (paper 2921)",
        ops(peak[0].0), ops(peak[0].1), ops(peak[0].2),
        ops(peak[1].0), ops(peak[1].1), ops(peak[1].2),
        ops(peak[2].0), ops(peak[2].1), ops(peak[2].2),
    ));
    // Shape assertions from the paper.
    assert!(
        peak[0].2 > peak[0].0,
        "0/0: NO-REP must beat BFT (CPU-bound)"
    );
    assert!(
        peak[1].0 > peak[1].2,
        "0/4: digest replies must beat the link cap"
    );
    assert!(peak[1].1 >= peak[1].0, "0/4: RO >= RW");
    assert!(
        (peak[2].0 - peak[2].2).abs() / peak[2].2 < 0.25,
        "4/0: BFT RW within ~11% of NO-REP"
    );
}
