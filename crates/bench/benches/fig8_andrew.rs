//! Figure 8: the scaled Andrew benchmark — elapsed time for BFS, NO-REP
//! and NFS-STD at n = 100 and n = 500.
//!
//! Paper claims: "BFS takes only 14% more time to run Andrew100 and 22%
//! more time to run Andrew500" than NO-REP, and "only 15% longer to
//! complete Andrew100 and 24% longer to complete Andrew500" than NFS-STD.
//!
//! Andrew500 is a long simulation; set `ANDREW500=0` to skip it.

use bft_bench::{figure_header, observe, ratio, secs, table_header, table_row};
use bft_core::config::Config;
use bft_fs::client::NfsClientConfig;
use bft_fs::disk::ServerMode;
use bft_workloads::andrew::{andrew_script, AndrewTimings};
use bft_workloads::harness::{run_bfs, run_direct_fs};

fn main() {
    let run500 = std::env::var("ANDREW500").map_or(true, |v| v != "0");
    let timings = AndrewTimings::default();
    let client_cfg = NfsClientConfig::default();
    let mut scales = vec![100u32];
    if run500 {
        scales.push(500);
    }
    figure_header(
        "Figure 8",
        "modified Andrew benchmark elapsed time (log scale in the paper)",
        "BFS ~14%/22% slower than NO-REP and ~15%/24% slower than NFS-STD (n=100/500)",
    );
    table_header(&[
        "benchmark",
        "BFS",
        "NO-REP",
        "NFS-STD",
        "BFS/NOREP",
        "BFS/NFSSTD",
    ]);
    for copies in scales {
        let script = andrew_script(copies, timings);
        let bfs = run_bfs(Config::new(1), script.clone(), client_cfg);
        let norep = run_direct_fs(ServerMode::NoRep, script.clone(), client_cfg);
        let nfsstd = run_direct_fs(ServerMode::NfsStd, script, client_cfg);
        let vs_norep = bfs.elapsed_secs() / norep.elapsed_secs();
        let vs_nfsstd = bfs.elapsed_secs() / nfsstd.elapsed_secs();
        table_row(&[
            format!("Andrew{copies}"),
            secs(bfs.elapsed_secs()),
            secs(norep.elapsed_secs()),
            secs(nfsstd.elapsed_secs()),
            ratio(vs_norep),
            ratio(vs_nfsstd),
        ]);
        observe(&format!(
            "Andrew{copies}: BFS {:.0}% slower than NO-REP (paper {}%), {:.0}% slower than NFS-STD (paper {}%); {} RPCs",
            (vs_norep - 1.0) * 100.0,
            if copies == 100 { 14 } else { 22 },
            (vs_nfsstd - 1.0) * 100.0,
            if copies == 100 { 15 } else { 24 },
            bfs.rpcs
        ));
        assert!(vs_norep > 1.0, "replication must cost something");
        assert!(vs_norep < 1.6, "Andrew overhead must stay low (paper <25%)");
    }
}
