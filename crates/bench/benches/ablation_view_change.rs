//! Ablation (beyond the paper's figures): view-change recovery time as a
//! function of the fault threshold f.
//!
//! The paper ran its experiments with no view changes; this ablation
//! measures what a primary crash costs: the time from the crash until
//! clients complete operations again under the new primary.

use bft_bench::{figure_header, observe, table_header, table_row};
use bft_core::prelude::*;
use bft_sim::dur;
use bft_workloads::micro::{MicroDriver, SimpleService};

fn recovery_time(f: u32) -> u64 {
    let mut cfg = Config::new(f);
    cfg.view_change_timeout_ns = dur::millis(300);
    cfg.client_retry_timeout_ns = dur::millis(100);
    let timeout = cfg.view_change_timeout_ns;
    let mut cluster = Cluster::new(99, NetConfig::SWITCHED_100MBPS, cfg, |_| SimpleService);
    for _ in 0..5 {
        cluster.add_client(MicroDriver::new(8, 8, false));
    }
    // Let the system settle, then crash the primary.
    cluster.run_for(dur::millis(50));
    let before = cluster.completed_ops();
    assert!(before > 0);
    cluster
        .replica_mut::<SimpleService>(0)
        .set_behavior(Behavior::Crashed);
    let crash_at = cluster.sim.now().nanos();
    // Wait until operations complete again *after* the view change.
    let mut recovered_at = None;
    for _ in 0..400 {
        cluster.run_for(dur::millis(10));
        let view_changed =
            (1..cluster.cfg.n()).all(|r| cluster.replica::<SimpleService>(r).view() >= 1);
        if view_changed && cluster.completed_ops() > before + 20 {
            recovered_at = Some(cluster.sim.now().nanos());
            break;
        }
    }
    let recovered = recovered_at.expect("cluster must recover from a primary crash");
    // Subtract the deliberate detection timeout to isolate protocol time.
    (recovered - crash_at).saturating_sub(timeout)
}

fn main() {
    figure_header(
        "Ablation",
        "view-change recovery time after a primary crash (detection timeout excluded)",
        "the paper ran with no view changes; this measures the recovery path",
    );
    table_header(&["f", "replicas", "recovery ms"]);
    let mut times = Vec::new();
    for f in 1..=3u32 {
        let t = recovery_time(f);
        times.push(t);
        table_row(&[
            f.to_string(),
            (3 * f + 1).to_string(),
            format!("{:.1}", t as f64 / 1e6),
        ]);
    }
    observe("recovery completes in tens of milliseconds once the fault is detected");
    for (i, &t) in times.iter().enumerate() {
        assert!(
            t < 2_000_000_000,
            "recovery at f={} took {}ms",
            i + 1,
            t / 1_000_000
        );
    }
}
