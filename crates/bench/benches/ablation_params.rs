//! Ablation (extension): the protocol parameters DESIGN.md calls out —
//! the batching window `W`, the maximum batch size, and the checkpoint
//! interval `K` — swept around the paper's defaults (W = 2, 64-request
//! batches, K = 128).

use bft_bench::{figure_header, observe, ops, table_header, table_row, us};
use bft_core::config::Config;
use bft_sim::dur;
use bft_workloads::harness::{bft_latency, bft_throughput_windowed, OpShape};

fn throughput(cfg: Config) -> f64 {
    bft_throughput_windowed(cfg, 50, OpShape::rw(0, 0), dur::secs(1), dur::secs(2)).ops_per_sec
}

fn main() {
    figure_header(
        "Ablation",
        "batch window W: 0/0 throughput (50 clients) and unloaded latency",
        "a small window suffices; W=1 serializes batches, large W adds nothing",
    );
    table_header(&["W", "ops/s", "latency"]);
    let mut w_results = Vec::new();
    for w in [1u64, 2, 4, 8] {
        let mut cfg = Config::new(1);
        cfg.batch_window = w;
        let t = throughput(cfg.clone());
        let l = bft_latency(cfg, OpShape::rw(0, 0), 30);
        w_results.push(t);
        table_row(&[w.to_string(), ops(t), us(l.mean)]);
    }

    figure_header(
        "Ablation",
        "max batch size: 0/0 throughput (50 clients)",
        "throughput saturates once batches amortize the protocol instance",
    );
    table_header(&["max reqs", "ops/s"]);
    let mut b_results = Vec::new();
    for max in [1usize, 8, 16, 64, 256] {
        let mut cfg = Config::new(1);
        cfg.max_batch_requests = max;
        cfg.max_batch_bytes = 64 * 1024;
        let t = throughput(cfg);
        b_results.push(t);
        table_row(&[max.to_string(), ops(t)]);
    }

    figure_header(
        "Ablation",
        "checkpoint interval K: 0/0 throughput (50 clients)",
        "frequent checkpoints cost digest + snapshot work; K=128 is cheap",
    );
    table_header(&["K", "ops/s"]);
    let mut k_results = Vec::new();
    for k in [16u64, 64, 128, 256] {
        let mut cfg = Config::new(1);
        cfg.checkpoint_interval = k;
        cfg.log_window = 2 * k;
        let t = throughput(cfg);
        k_results.push(t);
        table_row(&[k.to_string(), ops(t)]);
    }

    observe("batch size is the dominant parameter; W and K matter at the margins");
    assert!(
        b_results.last().expect("ran") > &(2.0 * b_results[0]),
        "unbatched (max 1) must be far below saturated batching"
    );
    assert!(
        w_results[1] >= 0.8 * w_results[3],
        "W=2 must already capture most of the pipelining win"
    );
}
