//! Machine-readable benchmark pipeline: the canonical `BENCH_*.json`
//! schema plus the regression comparator behind `--compare`.
//!
//! The `suite` binary runs a quick battery of experiments and emits one
//! versioned JSON document. Because the whole evaluation runs inside the
//! deterministic simulator, a document is a pure function of the
//! workload parameters and seeds: re-running the suite at the same
//! settings reproduces every metric bit for bit, so the comparator's
//! interesting output is *code* regressions, not measurement noise.
//!
//! Document shape (schema version [`SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "git_rev": "abc123",
//!   "config": { "quick": "true", ... },
//!   "results": [
//!     { "bench": "fig2_latency", "workload": "0/0",
//!       "metrics": { "mean_us": 512.0, "p50_us": 500.0, ... } }
//!   ],
//!   "counters": { "sent.request": 1234, ... }
//! }
//! ```
//!
//! `results` is ordered (benches run in a fixed order) and every
//! `metrics`/`counters` map serializes in key order, so two documents
//! from identical runs are byte-identical apart from `git_rev`.

use std::collections::BTreeMap;

/// Version stamp of the document layout. Bump when a field is added,
/// removed, or changes meaning; [`compare`] refuses to diff documents
/// from different schema versions.
pub const SCHEMA_VERSION: u32 = 1;

/// One benchmark measurement: a named experiment family, the workload
/// point within it, and a flat map of metric name to value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchResult {
    /// Experiment family (e.g. `fig2_latency`, `saturation`).
    pub bench: String,
    /// Workload point within the family (e.g. `0/0`, `20-clients`).
    pub workload: String,
    /// Metric name → value. Latencies are microseconds, rates are
    /// per-second, times are seconds; the name carries the unit suffix.
    pub metrics: BTreeMap<String, f64>,
}

/// The whole benchmark document — what `suite --out` writes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BenchDoc {
    /// Layout version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// `git rev-parse --short HEAD` of the producing tree (or
    /// `unknown` outside a git checkout). Informational only — the
    /// comparator never looks at it.
    pub git_rev: String,
    /// Run parameters (sample counts, seeds, quick mode) as strings.
    pub config: BTreeMap<String, String>,
    /// Measurements, in the suite's fixed execution order.
    pub results: Vec<BenchResult>,
    /// Cluster-wide health counters aggregated over the suite's own
    /// clusters (message sends/receives by tag, protocol events) — the
    /// observability cross-check that the runs exercised the paths
    /// their metrics claim to measure.
    pub counters: BTreeMap<String, u64>,
}

impl BenchDoc {
    /// An empty document stamped with the current schema version.
    pub fn new(git_rev: String, config: BTreeMap<String, String>) -> BenchDoc {
        BenchDoc {
            schema_version: SCHEMA_VERSION,
            git_rev,
            config,
            results: Vec::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Looks up a result by family and workload.
    pub fn result(&self, bench: &str, workload: &str) -> Option<&BenchResult> {
        self.results
            .iter()
            .find(|r| r.bench == bench && r.workload == workload)
    }
}

/// Whether a larger value of `metric` is an improvement. Throughput-like
/// metrics (rates) and retained-goodput fractions improve upward;
/// everything else — latencies, heal times, fallback counts — improves
/// downward.
pub fn higher_is_better(metric: &str) -> bool {
    metric.contains("throughput") || metric.contains("per_sec") || metric.contains("retained_pct")
}

/// One metric diffed between two documents.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Experiment family.
    pub bench: String,
    /// Workload point.
    pub workload: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Signed relative change in percent (positive = value went up).
    pub delta_pct: f64,
    /// The change is in the bad direction and exceeds the threshold.
    pub regression: bool,
    /// The change is in the good direction and exceeds the threshold.
    pub improvement: bool,
}

/// The outcome of diffing a new document against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Threshold (percent) past which a bad-direction delta flags.
    pub threshold_pct: f64,
    /// Every metric present in both documents.
    pub rows: Vec<CompareRow>,
    /// `bench/workload/metric` keys present in the baseline but absent
    /// from the new document. A vanished measurement fails the gate —
    /// losing coverage must be deliberate (regenerate the baseline).
    pub missing: Vec<String>,
    /// Keys present only in the new document (informational).
    pub added: Vec<String>,
}

impl CompareReport {
    /// Number of threshold-exceeding regressions.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regression).count()
    }

    /// True when the gate passes: no regressions and no vanished
    /// measurements.
    pub fn ok(&self) -> bool {
        self.regressions() == 0 && self.missing.is_empty()
    }

    /// Renders the regression table (all rows, flagged ones marked).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<22} {:<28} {:>12} {:>12} {:>8}  {}\n",
            "bench", "workload", "metric", "old", "new", "delta", "flag"
        ));
        out.push_str(&format!("{}\n", "-".repeat(112)));
        for r in &self.rows {
            let flag = if r.regression {
                "REGRESSION"
            } else if r.improvement {
                "improved"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<18} {:<22} {:<28} {:>12.2} {:>12.2} {:>+7.1}%  {}\n",
                r.bench, r.workload, r.metric, r.old, r.new, r.delta_pct, flag
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("MISSING from new document: {m}\n"));
        }
        for a in &self.added {
            out.push_str(&format!("added (not in baseline): {a}\n"));
        }
        out.push_str(&format!(
            "{} metrics compared, {} regression(s) past {:.0}% threshold\n",
            self.rows.len(),
            self.regressions(),
            self.threshold_pct
        ));
        out
    }
}

/// Diffs `new` against the `old` baseline: every metric present in both
/// gets a row; bad-direction deltas past `threshold_pct` are flagged as
/// regressions (direction per [`higher_is_better`]).
///
/// # Errors
///
/// Returns an error if the documents carry different schema versions —
/// a cross-version diff would silently compare renamed metrics.
pub fn compare(
    old: &BenchDoc,
    new: &BenchDoc,
    threshold_pct: f64,
) -> Result<CompareReport, String> {
    if old.schema_version != new.schema_version {
        return Err(format!(
            "schema version mismatch: baseline v{} vs new v{} — regenerate the baseline",
            old.schema_version, new.schema_version
        ));
    }
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for or in &old.results {
        let Some(nr) = new.result(&or.bench, &or.workload) else {
            missing.push(format!("{}/{} (entire workload)", or.bench, or.workload));
            continue;
        };
        for (metric, &ov) in &or.metrics {
            let Some(&nv) = nr.metrics.get(metric) else {
                missing.push(format!("{}/{}/{metric}", or.bench, or.workload));
                continue;
            };
            let delta_pct = if ov == 0.0 {
                if nv == 0.0 {
                    0.0
                } else {
                    // From-zero change: report it as a full-scale move so
                    // it cannot hide below any threshold.
                    100.0 * nv.signum()
                }
            } else {
                (nv - ov) / ov.abs() * 100.0
            };
            let worse = if higher_is_better(metric) {
                delta_pct < 0.0
            } else {
                delta_pct > 0.0
            };
            let past = delta_pct.abs() > threshold_pct;
            rows.push(CompareRow {
                bench: or.bench.clone(),
                workload: or.workload.clone(),
                metric: metric.clone(),
                old: ov,
                new: nv,
                delta_pct,
                regression: worse && past,
                improvement: !worse && past && delta_pct != 0.0,
            });
        }
    }
    let mut added = Vec::new();
    for nr in &new.results {
        match old.result(&nr.bench, &nr.workload) {
            None => added.push(format!("{}/{} (entire workload)", nr.bench, nr.workload)),
            Some(or) => {
                for metric in nr.metrics.keys() {
                    if !or.metrics.contains_key(metric) {
                        added.push(format!("{}/{}/{metric}", nr.bench, nr.workload));
                    }
                }
            }
        }
    }
    Ok(CompareReport {
        threshold_pct,
        rows,
        missing,
        added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> BenchDoc {
        let mut d = BenchDoc::new(
            "testrev".to_string(),
            BTreeMap::from([("quick".to_string(), "true".to_string())]),
        );
        d.results.push(BenchResult {
            bench: "fig2_latency".to_string(),
            workload: "0/0".to_string(),
            metrics: BTreeMap::from([
                ("mean_us".to_string(), 500.0),
                ("p99_us".to_string(), 750.0),
            ]),
        });
        d.results.push(BenchResult {
            bench: "saturation".to_string(),
            workload: "20-clients".to_string(),
            metrics: BTreeMap::from([("throughput_ops_per_sec".to_string(), 9000.0)]),
        });
        d.counters.insert("sent.request".to_string(), 42);
        d
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let d = doc();
        let json = serde_json::to_string(&d).expect("serializes");
        let back: BenchDoc = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, d);
        // Maps serialize in key order, so identical documents are
        // byte-identical — the property the CI gate relies on.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn identical_documents_compare_clean() {
        let d = doc();
        let rep = compare(&d, &d, 10.0).expect("same schema");
        assert!(rep.ok());
        assert_eq!(rep.regressions(), 0);
        assert_eq!(rep.rows.len(), 3);
        assert!(rep.rows.iter().all(|r| r.delta_pct == 0.0));
    }

    #[test]
    fn injected_latency_regression_is_flagged() {
        let old = doc();
        let mut new = doc();
        *new.results[0].metrics.get_mut("mean_us").unwrap() = 700.0; // +40%
        let rep = compare(&old, &new, 25.0).expect("same schema");
        assert!(!rep.ok());
        assert_eq!(rep.regressions(), 1);
        let row = rep.rows.iter().find(|r| r.regression).unwrap();
        assert_eq!(row.metric, "mean_us");
        assert!(rep.render().contains("REGRESSION"));
    }

    #[test]
    fn direction_awareness() {
        let old = doc();
        // Throughput going *up* 40% is an improvement, not a regression.
        let mut faster = doc();
        *faster.results[1]
            .metrics
            .get_mut("throughput_ops_per_sec")
            .unwrap() = 12_600.0;
        let rep = compare(&old, &faster, 25.0).unwrap();
        assert!(rep.ok());
        assert_eq!(rep.rows.iter().filter(|r| r.improvement).count(), 1);
        // Throughput going *down* 40% is a regression.
        let mut slower = doc();
        *slower.results[1]
            .metrics
            .get_mut("throughput_ops_per_sec")
            .unwrap() = 5_400.0;
        let rep = compare(&old, &slower, 25.0).unwrap();
        assert_eq!(rep.regressions(), 1);
    }

    #[test]
    fn below_threshold_deltas_pass() {
        let old = doc();
        let mut new = doc();
        *new.results[0].metrics.get_mut("mean_us").unwrap() = 550.0; // +10%
        let rep = compare(&old, &new, 25.0).unwrap();
        assert!(rep.ok());
        assert!(rep.rows.iter().all(|r| !r.regression && !r.improvement));
    }

    #[test]
    fn vanished_measurements_fail_the_gate() {
        let old = doc();
        let mut new = doc();
        new.results[0].metrics.remove("p99_us");
        new.results.remove(1);
        let rep = compare(&old, &new, 25.0).unwrap();
        assert!(!rep.ok());
        assert_eq!(rep.missing.len(), 2);
    }

    #[test]
    fn schema_version_mismatch_is_an_error() {
        let old = doc();
        let mut new = doc();
        new.schema_version = SCHEMA_VERSION + 1;
        assert!(compare(&old, &new, 10.0).is_err());
    }

    #[test]
    fn retained_goodput_improves_upward() {
        assert!(higher_is_better("goodput_retained_pct"));
        assert!(higher_is_better("honest_goodput_ops_per_sec"));
        assert!(!higher_is_better("honest_p99_us"));
        assert!(!higher_is_better("requests_shed"));
    }

    #[test]
    fn zero_baseline_changes_cannot_hide() {
        let mut old = doc();
        old.results[0].metrics.insert("fallbacks".to_string(), 0.0);
        let mut new = old.clone();
        new.results[0].metrics.insert("fallbacks".to_string(), 3.0);
        let rep = compare(&old, &new, 50.0).unwrap();
        assert_eq!(rep.regressions(), 1);
    }
}
