#![warn(missing_docs)]

//! Shared reporting utilities for the benchmark harness.
//!
//! Every figure/table of the paper has a bench target (with
//! `harness = false`) under `benches/` that runs the corresponding
//! experiment in the simulator and prints the same series the paper
//! plots, next to the paper's qualitative claims.
//!
//! [`suite`] holds the machine-readable side: the `BENCH_*.json`
//! document schema and the `--compare` regression gate used by the
//! `suite` binary and CI.

pub mod suite;

/// Prints a section header for one reproduced figure or table.
pub fn figure_header(id: &str, title: &str, paper_claim: &str) {
    println!();
    println!("================================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("================================================================================");
}

/// Prints a table header row followed by a rule.
pub fn table_header(cols: &[&str]) {
    let row = cols
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one table row of preformatted cells.
pub fn table_row(cells: &[String]) {
    let row = cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
}

/// Formats a nanosecond latency as microseconds.
pub fn us(ns: f64) -> String {
    format!("{:.0}us", ns / 1e3)
}

/// Formats an operations-per-second value.
pub fn ops(v: f64) -> String {
    format!("{v:.0}")
}

/// Formats a ratio like the paper's slowdown numbers.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats seconds.
pub fn secs(v: f64) -> String {
    format!("{v:.1}s")
}

/// Prints a closing observation line for the figure.
pub fn observe(s: &str) {
    println!("observed: {s}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(us(1500.0), "2us");
        assert_eq!(ops(6624.7), "6625");
        assert_eq!(ratio(1.264), "1.26x");
        assert_eq!(secs(12.34), "12.3s");
    }
}
