//! Read/write-mix latency table for read leases (arXiv:2107.11144): read
//! p50/p99 and write p50 across conflict rates (share of counter writes
//! in the mix), with leases on vs off, on a clean LAN and on a jittery
//! network. Reads hit the stateful counter service, so replicas
//! answering at diverging states return mismatched replies: with leases
//! off the read-only optimization must then retry and ultimately fall
//! back to the ordered path, while lease holders always answer from
//! their committed prefix in one round — `ro_fallbacks` must read zero.
//!
//! Run with `cargo run -p bft-bench --bin readmix [--release]`.

use bft_bench::{figure_header, observe, table_header, table_row};
use bft_core::config::Config;
use bft_sim::dur;
use bft_workloads::read_mix_run;

const CLIENTS: u32 = 4;
const OPS_PER_CLIENT: u64 = 250;
const SEED: u64 = 0xbf7_2107;

fn run_table(jitter_ns: u64) {
    table_header(&[
        "writes",
        "leases",
        "read p50",
        "read p99",
        "write p50",
        "lease reads",
        "ro retries",
        "fallbacks",
    ]);
    for write_permille in [0u32, 10, 100] {
        for leases in [false, true] {
            let mut cfg = Config::new(1);
            cfg.read_leases = leases;
            cfg.read_lease_ns = dur::millis(100);
            let stats = read_mix_run(
                cfg,
                CLIENTS,
                OPS_PER_CLIENT,
                write_permille,
                jitter_ns,
                SEED,
            );
            table_row(&[
                format!("{:.1}%", write_permille as f64 / 10.0),
                if leases { "on" } else { "off" }.into(),
                format!("{:.0} us", stats.read_p50_us),
                format!("{:.0} us", stats.read_p99_us),
                if stats.writes > 0 {
                    format!("{:.0} us", stats.write_p50_us)
                } else {
                    "-".into()
                },
                format!("{}", stats.lease_reads),
                format!("{}", stats.ro_retries),
                format!("{}", stats.ro_fallbacks),
            ]);
        }
    }
}

fn main() {
    figure_header(
        "Read mix (LAN)",
        "read latency vs conflict rate, leases on/off (4 clients, counter service)",
        "leased reads stay one round — and their tail flat — under concurrent writes",
    );
    run_table(0);
    observe("on a clean LAN replicas converge between writes, so the leases-off");
    observe("read-only path rarely conflicts; leases trade a sub-millisecond fence");
    observe("tail (reads parked during revoke-order-regrant) for never relying on it.");

    figure_header(
        "Read mix (jittery network)",
        "same mix with 500 us of uniform per-message jitter",
        "without leases, reads against diverging replicas retry and fall back",
    );
    run_table(dur::micros(500));
    observe("jitter widens the window in which replicas answer reads at diverging");
    observe("states: with leases off, conflicted reads burn retries and fall back to");
    observe("the ordered path; with leases on, holders keep answering in one round");
    observe("from their committed prefix and fallbacks stay at zero.");
}
