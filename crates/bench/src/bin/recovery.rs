//! Time-to-heal probe for proactive recovery (extension of the OSDI '00
//! recovery evaluation): a replica's state is silently corrupted under
//! load, and we measure how long until the next watchdog audit catches
//! the bad partition, re-fetches it, and the replica replays the ordered
//! work it discarded. The heal time is dominated by the wait for the
//! staggered watchdog, so it is flat across payload sizes — the payload
//! column instead moves the steady-state throughput and the depth of
//! the dip while the corrupt replica sits outside checkpoint quorum.
//!
//! Run with `cargo run -p bft-bench --bin recovery [--release]`.

use bft_bench::{figure_header, observe, ops, ratio, secs, table_header, table_row};
use bft_core::prelude::*;
use bft_sim::dur;

/// Closed-loop writer issuing `add 1` ops padded to a target size (the
/// counter ignores bytes past the operand, so padding only exercises the
/// transport, batching and replay paths).
struct PaddedAdds {
    pad: usize,
}

impl PaddedAdds {
    fn op(&self) -> Vec<u8> {
        let mut op = CounterService::add_op(1);
        op.resize(2 + self.pad, 0);
        op
    }
}

impl ClientDriver for PaddedAdds {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(self.op(), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _result: &[u8], _lat: u64) {
        api.submit(self.op(), false);
    }
}

/// The corruption XORs the counter's top bit (salt 63), so until the
/// audit restores a quorum-attested copy the victim's register sits
/// ~2^63 away from any value the cluster could legitimately reach, no
/// matter how many ops execute on top of it. Healed = top bit clear.
fn healed(cluster: &Cluster, victim: u32) -> bool {
    cluster.replica::<CounterService>(victim).service().value() < 1 << 62
}

fn main() {
    figure_header(
        "Recovery",
        "time to heal a silently corrupted replica vs request payload size",
        "proactive recovery bounds the damage a corrupt replica can do to one recovery period",
    );
    table_header(&["payload", "steady ops/s", "heal ops/s", "dip", "heal time"]);
    for pad in [0usize, 1024, 4096] {
        let mut cfg = Config::new(1);
        cfg.checkpoint_interval = 8;
        // Wide window: a corrupt replica stops stabilising checkpoints
        // (its digests mismatch the quorum), so its log GC stalls and a
        // small window would wedge it out of the water marks within
        // tens of milliseconds — healing via the lag-triggered state
        // transfer backstop instead of the recovery audit this bench
        // measures. 1024 slots outlasts any watchdog interval here.
        cfg.log_window = 1024;
        cfg.proactive_recovery_interval_ns = dur::millis(500);
        let mut cluster = Cluster::builder(cfg)
            .seed(0xBEEF ^ pad as u64)
            .net(NetConfig::SWITCHED_100MBPS)
            .build_counter();
        for _ in 0..6 {
            cluster.add_client(PaddedAdds { pad });
        }
        // Warm up, then take the undisturbed baseline.
        cluster.run_for(dur::secs(1));
        cluster.sim.metrics_mut().reset();
        cluster.run_for(dur::secs(1));
        let steady = cluster.sim.metrics().counter("client.ops_completed") as f64;

        // Land the corruption mid-interval: the victim's watchdog fires
        // at 375 ms + k*500 ms, so injecting at 2.6 s leaves its ongoing
        // recovery finished and the next fire ~275 ms out. (Injecting at
        // exactly 2.0 s races an in-flight audit whose fetched partition
        // overwrites the corruption within milliseconds — measuring
        // nothing.)
        cluster.run_for(dur::millis(600));
        // Lease contention (watchdogs fire cluster-wide every 125 ms
        // but the lease is 300 ms) skews the staggered schedule, so the
        // victim may still be mid-recovery here — and right after one it
        // trails the group and heals trivially through its rejoin
        // catch-up transfer. Wait until it is idle AND caught up, so the
        // corruption can only be healed by the next watchdog audit.
        loop {
            let victim = cluster.replica::<CounterService>(2);
            let peer = cluster.replica::<CounterService>(3);
            if !victim.recovering() && victim.last_executed() + 4 >= peer.last_executed() {
                break;
            }
            cluster.run_for(dur::millis(5));
        }
        // Flip the top bit of replica 2's register (odd salt: its
        // retained checkpoint copies are corrupted too, forcing the
        // audit's re-fetch path), then step until the next watchdog
        // fire audits and heals it.
        cluster.replica_mut::<CounterService>(2).corrupt_state(63);
        cluster.sim.metrics_mut().reset();
        let step = dur::millis(5);
        let mut waited = 0u64;
        while !healed(&cluster, 2) && waited < dur::secs(30) {
            cluster.run_for(step);
            waited += step;
        }
        let heal_secs = waited as f64 / 1e9;
        let during = cluster.sim.metrics().counter("client.ops_completed") as f64 / heal_secs;
        assert!(
            healed(&cluster, 2),
            "cluster failed to heal within 30 s at payload {pad}"
        );
        assert!(
            cluster
                .sim
                .metrics()
                .counter("replica.recovery_audit_refetch")
                > 0,
            "the heal must have come through the recovery audit"
        );
        table_row(&[
            format!("{pad}B"),
            ops(steady),
            ops(during),
            ratio(during / steady),
            secs(heal_secs),
        ]);
    }
    observe(
        "heal time is bounded by the watchdog period regardless of payload; \
         throughput dips while the corrupt replica is outside checkpoint quorum",
    );
}
