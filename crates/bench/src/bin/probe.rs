//! Diagnostic probe for a single throughput configuration: dumps all
//! metrics counters to find where a workload's capacity goes.

use bft_core::cluster::Cluster;
use bft_core::config::Config;
use bft_sim::{dur, NetConfig};
use bft_workloads::micro::{MicroDriver, SimpleService};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let arg: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let result: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);

    let mut cluster = Cluster::new(7, NetConfig::SWITCHED_100MBPS, Config::new(1), |_| {
        SimpleService
    });
    for _ in 0..clients {
        cluster.add_client(MicroDriver::new(arg, result, false));
    }
    cluster.run_for(dur::secs(2));
    println!("--- after warmup (2s) ---");
    for (k, v) in cluster.sim.metrics().counters_sorted() {
        println!("{k:>40} {v}");
    }
    for r in 0..4 {
        println!("replica {r}: {:?}", cluster.replica::<SimpleService>(r));
    }
    cluster.sim.metrics_mut().reset();
    cluster.run_for(dur::secs(2));
    println!("--- measurement window (2s) ---");
    for (k, v) in cluster.sim.metrics().counters_sorted() {
        println!("{k:>40} {v}");
    }
    let lat = cluster.sim.metrics().summary("client.latency");
    println!(
        "ops/s = {:.0}, latency mean {:.1}ms p99 {:.1}ms",
        cluster.sim.metrics().counter("client.ops_completed") as f64 / 2.0,
        lat.mean / 1e6,
        lat.p99 as f64 / 1e6
    );
    for r in 0..4 {
        println!("replica {r}: {:?}", cluster.replica::<SimpleService>(r));
    }
}
