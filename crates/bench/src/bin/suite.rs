//! Machine-readable benchmark suite: runs a quick battery spanning the
//! six experiment families the evaluation leans on and emits one
//! canonical versioned JSON document (`BENCH_*.json`, schema in
//! [`bft_bench::suite`]):
//!
//! 1. `fig2_latency` — single-client invocation latency at the paper's
//!    Figure 2 operation shapes (0/0, 4096/0, 0/4096);
//! 2. `saturation` — closed-loop throughput at 20 clients;
//! 3. `breakdown` — traced 0/0 run, classic vs fast path: end-to-end
//!    latency and tentative-execute → commit-certificate lag;
//! 4. `readmix` — leased vs unleased read latency under a 1% write mix
//!    on a jittery network (the lease headline: zero fallbacks);
//! 5. `recovery` — time to heal a silently corrupted replica via the
//!    proactive recovery audit, and the throughput dip while healing;
//! 6. `overload` — the degradation curve: honest goodput and tail
//!    latency with a Byzantine client flooding at 1×–16× the no-flood
//!    goodput, admission control on.
//!
//! Everything runs in the deterministic simulator, so at fixed settings
//! the emitted metrics are bit-for-bit reproducible; `--compare` is a
//! code-regression gate, not a noise filter.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bft-bench --bin suite -- [FLAGS]
//!   --quick           small sample counts / short windows (CI profile;
//!                     the checked-in baseline is generated with this)
//!   --out PATH        write the JSON document to PATH
//!   --in PATH         load the document from PATH instead of running
//!   --compare OLD     diff against a baseline document; print the
//!                     regression table and exit non-zero on threshold-
//!                     exceeding regressions or vanished measurements
//!   --threshold PCT   regression threshold in percent (default 10)
//! ```

use std::collections::BTreeMap;

use bft_bench::suite::{compare, BenchDoc, BenchResult};
use bft_core::prelude::*;
use bft_sim::trace::{assemble, breakdown as trace_breakdown};
use bft_workloads::harness::{bft_latency, OpShape, SEED};
use bft_workloads::micro::{simple_op, MicroDriver, SimpleService};
use bft_workloads::read_mix_run;
use bft_workloads::FloodDriver;

const TRACE_CAPACITY: usize = 1 << 16;

fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
}

fn merge_counters(into: &mut BTreeMap<String, u64>, from: Vec<(String, u64)>) {
    for (k, v) in from {
        *into.entry(k).or_insert(0) += v;
    }
}

/// Family 1: Figure 2 latency points, one closed-loop client.
fn fig2_latency(quick: bool, out: &mut BenchDoc) {
    let samples = if quick { 40 } else { 200 };
    for (label, shape) in [
        ("0/0", OpShape::rw(0, 0)),
        ("4096/0", OpShape::rw(4096, 0)),
        ("0/4096", OpShape::rw(0, 4096)),
    ] {
        let s = bft_latency(Config::new(1), shape, samples);
        out.results.push(BenchResult {
            bench: "fig2_latency".to_string(),
            workload: label.to_string(),
            metrics: metrics(&[
                ("mean_us", s.mean / 1e3),
                ("p50_us", s.p50 as f64 / 1e3),
                ("p99_us", s.p99 as f64 / 1e3),
            ]),
        });
    }
}

/// Family 2: saturation throughput, 20 staggered closed-loop clients.
/// Runs its own cluster (instead of the harness helper) so the health
/// counter registry can be harvested into the document.
fn saturation(quick: bool, out: &mut BenchDoc) {
    const CLIENTS: u32 = 20;
    let (warmup, window) = if quick {
        (dur::millis(300), dur::millis(700))
    } else {
        (dur::secs(1), dur::secs(2))
    };
    let mut cluster = Cluster::new(SEED, NetConfig::SWITCHED_100MBPS, Config::new(1), |_| {
        SimpleService
    });
    for i in 0..CLIENTS {
        cluster.add_client(
            MicroDriver::new(0, 0, false).with_start_delay(u64::from(i) * dur::micros(400)),
        );
    }
    cluster.run_for(warmup);
    cluster.sim.metrics_mut().reset();
    cluster.run_for(window);
    let ops = cluster.sim.metrics().counter("client.ops_completed");
    let window_s = window as f64 / 1e9;
    let lat = cluster.sim.metrics().summary("client.latency");
    out.results.push(BenchResult {
        bench: "saturation".to_string(),
        workload: format!("{CLIENTS}-clients"),
        metrics: metrics(&[
            ("throughput_ops_per_sec", ops as f64 / window_s),
            ("latency_p50_us", lat.p50 as f64 / 1e3),
            ("latency_p99_us", lat.p99 as f64 / 1e3),
        ]),
    });
    merge_counters(&mut out.counters, cluster.sim.health().flattened());
}

/// Family 3: traced 0/0 breakdown, classic three-phase vs fast path.
fn breakdown(quick: bool, out: &mut BenchDoc) {
    let samples = if quick { 60 } else { 200 };
    for fast_path in [false, true] {
        let mut cfg = Config::new(1);
        cfg.fast_path = fast_path;
        let mut cluster = Cluster::builder(cfg)
            .seed(SEED)
            .net(NetConfig::SWITCHED_100MBPS)
            .trace_capacity(TRACE_CAPACITY)
            .build(|_| SimpleService);
        cluster.add_client(MicroDriver::new(0, 0, false));
        let mut guard = 0;
        while cluster.completed_ops() < samples && guard < 10_000 {
            cluster.run_for(dur::millis(10));
            guard += 1;
        }
        assert!(
            cluster.completed_ops() >= samples,
            "breakdown workload stalled"
        );
        let paths = assemble(cluster.sim.trace());
        let b = trace_breakdown(&paths);
        let commit_lag_us = if b.commit_observed > 0 {
            b.commit_lag_total_ns as f64 / b.commit_observed as f64 / 1e3
        } else {
            0.0
        };
        let mean_us = cluster.sim.metrics().summary("client.latency").mean / 1e3;
        let fast_commits = cluster.sim.health().total(bft_sim::Counter::FastCommits);
        let fallbacks = cluster.sim.health().total(bft_sim::Counter::FastFallbacks);
        out.results.push(BenchResult {
            bench: "breakdown".to_string(),
            workload: if fast_path {
                "0/0-fast".to_string()
            } else {
                "0/0-classic".to_string()
            },
            metrics: metrics(&[
                ("e2e_mean_us", mean_us),
                ("commit_lag_us", commit_lag_us),
                ("fast_commits", fast_commits as f64),
                ("fast_fallbacks", fallbacks as f64),
            ]),
        });
        merge_counters(&mut out.counters, cluster.sim.health().flattened());
    }
}

/// Family 4: leased vs unleased reads, 1% writes, 500 µs jitter — the
/// regime where the unleased read-only optimization starts burning
/// retries and falling back to the ordered path.
fn readmix(quick: bool, out: &mut BenchDoc) {
    let ops_per_client = if quick { 60 } else { 250 };
    for leases in [false, true] {
        let mut cfg = Config::new(1);
        cfg.read_leases = leases;
        cfg.read_lease_ns = dur::millis(100);
        let stats = read_mix_run(cfg, 4, ops_per_client, 10, dur::micros(500), 0xbf7_2107);
        out.results.push(BenchResult {
            bench: "readmix".to_string(),
            workload: if leases {
                "1pct-writes-leases".to_string()
            } else {
                "1pct-writes-classic".to_string()
            },
            metrics: metrics(&[
                ("read_p50_us", stats.read_p50_us),
                ("read_p99_us", stats.read_p99_us),
                ("lease_reads", stats.lease_reads as f64),
                ("ro_fallbacks", stats.ro_fallbacks as f64),
            ]),
        });
    }
}

/// Closed-loop writer of `add 1` counter ops (the recovery workload
/// needs real state so corruption is observable).
struct Adds;

impl ClientDriver for Adds {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(CounterService::add_op(1), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _result: &[u8], _lat: u64) {
        api.submit(CounterService::add_op(1), false);
    }
}

/// Family 5: time-to-heal. Flips the top bit of one replica's counter
/// under load and measures the wait until the proactive-recovery
/// watchdog audit catches and repairs it (recipe from the `recovery`
/// binary, single payload point).
fn recovery(quick: bool, out: &mut BenchDoc) {
    let healed =
        |cluster: &Cluster| cluster.replica::<CounterService>(2).service().value() < 1 << 62;
    let mut cfg = Config::new(1);
    cfg.checkpoint_interval = 8;
    // Wide window so the corrupt replica (whose checkpoint GC stalls)
    // heals through the audit, not the lag-triggered transfer backstop.
    cfg.log_window = 1024;
    cfg.proactive_recovery_interval_ns = dur::millis(500);
    let mut cluster = Cluster::builder(cfg)
        .seed(0xBEEF)
        .net(NetConfig::SWITCHED_100MBPS)
        .build_counter();
    for _ in 0..6 {
        cluster.add_client(Adds);
    }
    let baseline = if quick {
        dur::millis(400)
    } else {
        dur::secs(1)
    };
    cluster.run_for(dur::secs(1));
    cluster.sim.metrics_mut().reset();
    cluster.run_for(baseline);
    let steady =
        cluster.sim.metrics().counter("client.ops_completed") as f64 / (baseline as f64 / 1e9);
    // Land the corruption mid-watchdog-interval, with the victim idle
    // and caught up (see the `recovery` binary for the full rationale).
    cluster.run_for(dur::millis(600));
    loop {
        let victim = cluster.replica::<CounterService>(2);
        let peer = cluster.replica::<CounterService>(3);
        if !victim.recovering() && victim.last_executed() + 4 >= peer.last_executed() {
            break;
        }
        cluster.run_for(dur::millis(5));
    }
    cluster.replica_mut::<CounterService>(2).corrupt_state(63);
    cluster.sim.metrics_mut().reset();
    let step = dur::millis(5);
    let mut waited = 0u64;
    while !healed(&cluster) && waited < dur::secs(30) {
        cluster.run_for(step);
        waited += step;
    }
    assert!(healed(&cluster), "cluster failed to heal within 30 s");
    let heal_s = waited as f64 / 1e9;
    let during = cluster.sim.metrics().counter("client.ops_completed") as f64 / heal_s;
    out.results.push(BenchResult {
        bench: "recovery".to_string(),
        workload: "corrupt-top-bit".to_string(),
        metrics: metrics(&[
            ("heal_time_s", heal_s),
            ("steady_throughput_ops_per_sec", steady),
            ("heal_throughput_ops_per_sec", during),
        ]),
    });
    merge_counters(&mut out.counters, cluster.sim.health().flattened());
}

/// Closed-loop 0/0 client that records its latency under a private
/// metric, so the overload family's honest-client numbers are not
/// polluted by the flooder's completions in `client.latency`.
struct HonestMicro;

impl ClientDriver for HonestMicro {
    fn on_start(&mut self, api: &mut ClientApi<'_, '_>) {
        api.submit(simple_op(0, 0, false), false);
    }
    fn on_complete(&mut self, api: &mut ClientApi<'_, '_>, _result: &[u8], latency_ns: u64) {
        api.metrics().record("bench.honest_latency", latency_ns);
        api.submit(simple_op(0, 0, false), false);
    }
}

/// Family 6: overload degradation curve. Four honest closed-loop
/// clients share the cluster with one open-loop flooder offering
/// 1×–16× the no-flood goodput; admission control (per-client quota,
/// queue caps, BUSY pushback) is on. The interesting shape: honest
/// goodput should degrade gracefully — not collapse — as offered junk
/// load climbs past saturation, with the overflow absorbed by the shed
/// counters instead of the queues.
fn overload(quick: bool, out: &mut BenchDoc) {
    let (warmup, window) = if quick {
        (dur::millis(300), dur::millis(700))
    } else {
        (dur::secs(1), dur::secs(2))
    };
    let mut cfg = Config::new(1);
    cfg.admission_control = true;
    cfg.admission_client_quota = 4;
    cfg.admission_queue_cap = 64;
    cfg.busy_retry_after_ns = dur::millis(2);
    cfg.client_retry_budget = 12;

    /// The fifth client at each curve point.
    enum Flooder {
        /// No fifth client — the no-flood baseline.
        None,
        /// Open loop but well behaved: offers at the interval, drops the
        /// offer at the source while its previous op is outstanding.
        Polite(u64),
        /// Byzantine: abandons the outstanding op every tick and issues a
        /// fresh one, holding quota-busting work in flight.
        Abusive(u64),
    }

    let mut run_point = |flooder: Flooder| -> (f64, f64, u64, u64) {
        let mut cluster = Cluster::new(
            0x0BE5_BEAC,
            NetConfig::SWITCHED_100MBPS,
            cfg.clone(),
            |_| SimpleService,
        );
        for _ in 0..4 {
            cluster.add_client(HonestMicro);
        }
        match flooder {
            Flooder::None => {}
            Flooder::Polite(interval) => {
                cluster.add_client(FloodDriver::new(interval, simple_op(0, 0, false), false));
            }
            Flooder::Abusive(interval) => {
                let id = cluster.add_client(MicroDriver::new(0, 0, false));
                cluster.client_mut::<MicroDriver>(id).set_behavior(
                    bft_core::ClientBehavior::Flood {
                        interval_ns: interval,
                    },
                );
            }
        }
        cluster.run_for(warmup);
        cluster.sim.metrics_mut().reset();
        cluster.run_for(window);
        let window_s = window as f64 / 1e9;
        let honest = cluster.sim.metrics().summary("bench.honest_latency");
        let shed = cluster.sim.health().total(bft_sim::Counter::RequestsShed);
        let busy = cluster.sim.health().total(bft_sim::Counter::BusySent);
        merge_counters(&mut out.counters, cluster.sim.health().flattened());
        (
            honest.count as f64 / window_s,
            honest.p99 as f64 / 1e3,
            shed,
            busy,
        )
    };

    let (base_goodput, base_p99, _, _) = run_point(Flooder::None);
    out.results.push(BenchResult {
        bench: "overload".to_string(),
        workload: "no-flood".to_string(),
        metrics: metrics(&[
            ("honest_goodput_ops_per_sec", base_goodput),
            ("honest_p99_us", base_p99),
        ]),
    });
    let point = |goodput: f64, p99: f64, shed: u64, busy: u64| {
        metrics(&[
            ("honest_goodput_ops_per_sec", goodput),
            ("honest_p99_us", p99),
            (
                "goodput_retained_pct",
                100.0 * goodput / base_goodput.max(1.0),
            ),
            ("requests_shed", shed as f64),
            ("busy_sent", busy as f64),
        ])
    };
    for mult in [1u64, 2, 4, 8, 16] {
        let offered = base_goodput.max(1.0) * mult as f64;
        let interval = ((1e9 / offered) as u64).max(1);
        let (goodput, p99, shed, busy) = run_point(Flooder::Abusive(interval));
        out.results.push(BenchResult {
            bench: "overload".to_string(),
            workload: format!("{mult}x-flood"),
            metrics: point(goodput, p99, shed, busy),
        });
    }
    // Contrast point: the same 16× offered load from a client that stays
    // closed-loop (skips offers while one is outstanding) costs the
    // cluster nothing — overload armor is about *abusive* concurrency,
    // not raw offered rate.
    let interval = ((1e9 / (base_goodput.max(1.0) * 16.0)) as u64).max(1);
    let (goodput, p99, shed, busy) = run_point(Flooder::Polite(interval));
    out.results.push(BenchResult {
        bench: "overload".to_string(),
        workload: "16x-polite".to_string(),
        metrics: point(goodput, p99, shed, busy),
    });
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn run_suite(quick: bool) -> BenchDoc {
    let config = BTreeMap::from([
        ("quick".to_string(), quick.to_string()),
        ("n".to_string(), Config::new(1).n().to_string()),
        ("f".to_string(), "1".to_string()),
        ("seed".to_string(), format!("{SEED:#x}")),
    ]);
    let mut doc = BenchDoc::new(git_rev(), config);
    eprintln!("suite: fig2_latency ...");
    fig2_latency(quick, &mut doc);
    eprintln!("suite: saturation ...");
    saturation(quick, &mut doc);
    eprintln!("suite: breakdown ...");
    breakdown(quick, &mut doc);
    eprintln!("suite: readmix ...");
    readmix(quick, &mut doc);
    eprintln!("suite: recovery ...");
    recovery(quick, &mut doc);
    eprintln!("suite: overload ...");
    overload(quick, &mut doc);
    doc
}

fn print_doc(doc: &BenchDoc) {
    println!(
        "benchmark suite (schema v{}, rev {})",
        doc.schema_version, doc.git_rev
    );
    for r in &doc.results {
        println!("  {} / {}", r.bench, r.workload);
        for (k, v) in &r.metrics {
            println!("    {k:<32} {v:>12.2}");
        }
    }
    println!("  counters: {} keys", doc.counters.len());
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut in_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut threshold: f64 = 10.0;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out_path = Some(argv.get(i).expect("--out needs a path").clone());
            }
            "--in" => {
                i += 1;
                in_path = Some(argv.get(i).expect("--in needs a path").clone());
            }
            "--compare" => {
                i += 1;
                compare_path = Some(argv.get(i).expect("--compare needs a path").clone());
            }
            "--threshold" => {
                i += 1;
                threshold = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threshold needs a number");
            }
            other => {
                eprintln!("unknown flag `{other}` (see source header for usage)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let doc = match &in_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
        }
        None => run_suite(quick),
    };

    if let Some(path) = &out_path {
        let json = serde_json::to_string(&doc).expect("document serializes");
        std::fs::write(path, json + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    print_doc(&doc);

    if let Some(path) = &compare_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let old: BenchDoc =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
        match compare(&old, &doc, threshold) {
            Ok(rep) => {
                println!();
                print!("{}", rep.render());
                if !rep.ok() {
                    eprintln!("FAIL: benchmark regression gate");
                    std::process::exit(1);
                }
                println!("benchmark regression gate passed");
            }
            Err(e) => {
                eprintln!("FAIL: {e}");
                std::process::exit(1);
            }
        }
    }
}
