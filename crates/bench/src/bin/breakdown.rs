//! Per-phase latency breakdown for the micro-benchmarks — the shape of
//! the paper's Tables 2 and 3, reconstructed from the structured trace
//! instead of hand-instrumented timers.
//!
//! For each request/reply size the binary runs a traced closed-loop
//! cluster, assembles every completed request's span chain
//! (client send -> request recv -> pre-prepare -> prepared -> tentative
//! execute -> reply recv), and prints the mean time spent in each phase
//! next to the independently measured end-to-end latency, plus the
//! replica CPU attribution per [`CostKind`].
//!
//! Every workload runs twice — classic three-phase and with the
//! optimistic fast path (`Config::fast_path`) armed — and a comparison
//! table reports the commit-lag delta: how much sooner a tentatively
//! executed request's commit certificate lands when a fast quorum of
//! prepares replaces the commit round.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bft-bench --bin breakdown -- [FLAGS]
//!   --samples N      measured requests per workload (default 200)
//!   --json           emit the reports as one JSON document
//!   --export PATH    write the 0/0 run's Chrome trace JSON to PATH
//!   --validate       re-parse every exported trace against the Chrome
//!                    trace-event schema and require the assembled phase
//!                    sum to be within 5% of the measured latency;
//!                    exits non-zero on any failure
//! ```

use bft_core::cluster::Cluster;
use bft_core::config::Config;
use bft_sim::trace::{
    assemble, breakdown, Breakdown, CostKind, SpanEdge, TracePhase, PHASE_LABELS,
};
use bft_sim::{dur, Counter, NetConfig};
use bft_workloads::micro::{MicroDriver, SimpleService};
use bft_workloads::mix::ReadMixDriver;

const SEED: u64 = 7;
const WARMUP_OPS: u64 = 50;
const TRACE_CAPACITY: usize = 1 << 16;

struct WorkloadSpec {
    label: &'static str,
    arg_bytes: usize,
    result_bytes: usize,
}

const WORKLOADS: [WorkloadSpec; 3] = [
    WorkloadSpec {
        label: "0/0",
        arg_bytes: 0,
        result_bytes: 0,
    },
    WorkloadSpec {
        label: "4/0",
        arg_bytes: 4096,
        result_bytes: 0,
    },
    WorkloadSpec {
        label: "0/4",
        arg_bytes: 0,
        result_bytes: 4096,
    },
];

#[derive(serde::Serialize)]
struct CpuShare {
    kind: String,
    us_per_request: f64,
}

#[derive(serde::Serialize)]
struct Report {
    workload: String,
    fast_path: bool,
    arg_bytes: u64,
    result_bytes: u64,
    requests: u64,
    phase_labels: Vec<String>,
    phase_mean_us: Vec<f64>,
    assembled_e2e_us: f64,
    measured_e2e_us: f64,
    error_pct: f64,
    commit_lag_us: f64,
    cpu: Vec<CpuShare>,
}

/// One measured run: the report, the exported Chrome trace JSON, and
/// the counter-vs-trace cross-check inputs (`--validate`): the health
/// counter registry and the trace must agree on how many fast-path
/// commits happened, or one of the two observers is lying.
struct RunOutput {
    report: Report,
    chrome_json: String,
    /// `fast-commit` spans closed in the trace (fault-free: one per
    /// fast-path-committed batch; fallbacks would also close one, so
    /// the cross-check first requires zero fallbacks).
    fast_commit_closes: u64,
    /// Cluster-wide [`Counter::FastCommits`] over the measured window.
    fast_commits_counted: u64,
    /// Cluster-wide [`Counter::FastFallbacks`] over the measured window.
    fast_fallbacks_counted: u64,
}

fn run_workload(spec: &WorkloadSpec, samples: u64, fast_path: bool) -> RunOutput {
    let mut cfg = Config::new(1);
    cfg.fast_path = fast_path;
    let replicas = cfg.n();
    let mut cluster = Cluster::builder(cfg)
        .seed(SEED)
        .net(NetConfig::SWITCHED_100MBPS)
        .trace_capacity(TRACE_CAPACITY)
        .build(|_| SimpleService);
    cluster.add_client(MicroDriver::new(spec.arg_bytes, spec.result_bytes, false));

    // Warm up one event at a time so we stop exactly at WARMUP_OPS
    // completions, then discard warmup metrics and trace events.
    while cluster.completed_ops() < WARMUP_OPS && cluster.sim.step() {}
    cluster.sim.metrics_mut().reset();
    cluster.sim.trace_mut().clear();
    // Reset the health counters with the trace so the two observers
    // cover exactly the same window and can be cross-checked.
    cluster.sim.health_mut().reset();

    let mut guard = 0;
    while cluster.completed_ops() < samples && guard < 10_000 {
        cluster.run_for(dur::millis(10));
        guard += 1;
    }
    let requests_done = cluster.completed_ops();
    assert!(
        requests_done >= samples,
        "workload {} stalled at {requests_done}/{samples} requests",
        spec.label
    );

    let sink = cluster.sim.trace();
    let paths = assemble(sink);
    let b: Breakdown = breakdown(&paths);
    let measured_ns = cluster.sim.metrics().summary("client.latency").mean;
    let assembled_ns = b.e2e_mean_ns();
    let error_pct = if measured_ns > 0.0 {
        (assembled_ns - measured_ns).abs() / measured_ns * 100.0
    } else {
        0.0
    };
    let commit_lag_us = if b.commit_observed > 0 {
        b.commit_lag_total_ns as f64 / b.commit_observed as f64 / 1000.0
    } else {
        0.0
    };
    let cpu = CostKind::ALL
        .iter()
        .map(|&kind| {
            let total: u64 = (0..replicas).map(|r| sink.cpu_ns(r, kind)).sum();
            CpuShare {
                kind: kind.name().to_string(),
                us_per_request: total as f64 / requests_done as f64 / 1000.0,
            }
        })
        .collect();

    let fast_commit_closes = sink
        .events()
        .filter(|e| e.phase == TracePhase::FastCommit && e.edge == SpanEdge::Close)
        .count() as u64;
    let health = cluster.sim.health();

    RunOutput {
        fast_commit_closes,
        fast_commits_counted: health.total(Counter::FastCommits),
        fast_fallbacks_counted: health.total(Counter::FastFallbacks),
        report: Report {
            workload: spec.label.to_string(),
            fast_path,
            arg_bytes: spec.arg_bytes as u64,
            result_bytes: spec.result_bytes as u64,
            requests: b.requests,
            phase_labels: PHASE_LABELS.iter().map(|s| s.to_string()).collect(),
            phase_mean_us: (0..PHASE_LABELS.len())
                .map(|i| b.phase_mean_ns(i) / 1000.0)
                .collect(),
            assembled_e2e_us: assembled_ns / 1000.0,
            measured_e2e_us: measured_ns / 1000.0,
            error_pct,
            commit_lag_us,
            cpu,
        },
        chrome_json: sink.chrome_trace_json(),
    }
}

fn print_report(r: &Report) {
    let path = if r.fast_path { "fast path" } else { "classic" };
    println!(
        "workload {} [{path}] (request {} B, reply {} B) — {} assembled requests",
        r.workload, r.arg_bytes, r.result_bytes, r.requests
    );
    println!("  {:<42} {:>10} {:>8}", "phase", "mean (µs)", "share");
    for (label, &us) in r.phase_labels.iter().zip(&r.phase_mean_us) {
        let share = if r.assembled_e2e_us > 0.0 {
            us / r.assembled_e2e_us * 100.0
        } else {
            0.0
        };
        println!("  {label:<42} {us:>10.1} {share:>7.1}%");
    }
    println!(
        "  {:<42} {:>10.1}",
        "assembled end-to-end", r.assembled_e2e_us
    );
    println!(
        "  {:<42} {:>10.1} ({:+.2}% vs assembled)",
        "measured client.latency mean", r.measured_e2e_us, -r.error_pct
    );
    println!(
        "  {:<42} {:>10.1}",
        "tentative execute -> commit quorum lag", r.commit_lag_us
    );
    let cpu_line: Vec<String> = r
        .cpu
        .iter()
        .map(|c| format!("{} {:.1}", c.kind, c.us_per_request))
        .collect();
    println!("  replica CPU per request (µs): {}", cpu_line.join(", "));
    println!();
}

/// The fast-path headline: per workload, how much sooner the commit
/// certificate lands (and what that does to end-to-end latency) when a
/// fast quorum of prepares replaces the commit round.
fn print_comparison(classic: &[Report], fast: &[Report]) {
    println!("fast path vs classic:");
    println!(
        "  {:<10} {:>16} {:>13} {:>9} {:>8} {:>14} {:>13}",
        "workload", "commit lag (µs)", "fast (µs)", "delta", "saved", "e2e (µs)", "fast e2e"
    );
    for (c, f) in classic.iter().zip(fast) {
        let saved = if c.commit_lag_us > 0.0 {
            (c.commit_lag_us - f.commit_lag_us) / c.commit_lag_us * 100.0
        } else {
            0.0
        };
        println!(
            "  {:<10} {:>16.1} {:>13.1} {:>9.1} {:>7.1}% {:>14.1} {:>13.1}",
            c.workload,
            c.commit_lag_us,
            f.commit_lag_us,
            f.commit_lag_us - c.commit_lag_us,
            saved,
            c.measured_e2e_us,
            f.measured_e2e_us,
        );
    }
    println!();
}

// ---------------------------------------------------------------------
// Chrome trace-event schema validation (`--validate`)
// ---------------------------------------------------------------------

/// The subset of the Chrome trace-event schema every exported event must
/// carry. Extra fields (`s`, `args`) are permitted; these are required.
#[derive(serde::Deserialize)]
#[allow(non_snake_case)]
struct ChromeDoc {
    traceEvents: Vec<ChromeEvent>,
}

#[derive(serde::Deserialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    pid: u64,
    tid: u64,
}

/// Validates an exported trace against the Chrome trace-event schema:
/// the document parses, and every event has a well-formed `name`, `cat`,
/// `ph` (B/E/i), non-negative finite `ts`, in-range `pid`, and a `tid`.
/// Returns the number of validated events.
fn validate_chrome_trace(json: &str, node_count: u64) -> Result<usize, String> {
    let doc: ChromeDoc =
        serde_json::from_str(json).map_err(|e| format!("document does not parse: {e:?}"))?;
    if doc.traceEvents.is_empty() {
        return Err("traceEvents array is empty".to_string());
    }
    for (i, ev) in doc.traceEvents.iter().enumerate() {
        if ev.name.is_empty() {
            return Err(format!("event {i}: empty name"));
        }
        if !matches!(
            ev.cat.as_str(),
            "request" | "ordering" | "execution" | "recovery"
        ) {
            return Err(format!("event {i}: unknown category `{}`", ev.cat));
        }
        if !matches!(ev.ph.as_str(), "B" | "E" | "i") {
            return Err(format!("event {i}: bad phase `{}` (want B/E/i)", ev.ph));
        }
        if !ev.ts.is_finite() || ev.ts < 0.0 {
            return Err(format!("event {i}: bad ts {}", ev.ts));
        }
        if ev.pid >= node_count {
            return Err(format!(
                "event {i}: pid {} out of range (< {node_count})",
                ev.pid
            ));
        }
        // `tid` is a sequence number or 0; any u64 is well-formed, but it
        // must have parsed as an integer to get here.
        let _ = ev.tid;
    }
    Ok(doc.traceEvents.len())
}

/// The read-lease path run: a read-mostly leased workload (1% counter
/// writes) whose exported trace must carry `lease-read` instant events.
/// Returns the Chrome trace JSON plus the lease-read and fallback
/// counters (the lease-read count comes from the health counter
/// registry, so `--validate` cross-checks it against the trace).
fn run_lease_workload(samples: u64) -> (String, u64, u64) {
    let mut cfg = Config::new(1);
    cfg.read_leases = true;
    cfg.read_lease_ns = dur::millis(100);
    let mut cluster = Cluster::builder(cfg)
        .seed(SEED)
        .net(NetConfig::SWITCHED_100MBPS)
        .trace_capacity(TRACE_CAPACITY)
        .build_counter();
    cluster.add_client(ReadMixDriver::new(10, SEED).with_max_ops(samples));
    let mut guard = 0;
    while cluster.completed_ops() < samples && guard < 10_000 {
        cluster.run_for(dur::millis(10));
        guard += 1;
    }
    assert!(
        cluster.completed_ops() >= samples,
        "lease workload stalled at {}/{samples} requests",
        cluster.completed_ops()
    );
    let lease_reads = cluster.sim.health().total(Counter::LeaseReads);
    assert_eq!(
        lease_reads,
        cluster.sim.metrics().counter("replica.lease_reads"),
        "health counter and metrics counter disagree on lease reads"
    );
    let fallbacks = cluster.sim.metrics().counter("client.ro_fallbacks");
    (
        cluster.sim.trace().chrome_trace_json(),
        lease_reads,
        fallbacks,
    )
}

/// Counts trace events with the given name (used to require that the
/// lease workload actually exercised the lease-read path).
fn count_events(json: &str, name: &str) -> Result<usize, String> {
    let doc: ChromeDoc =
        serde_json::from_str(json).map_err(|e| format!("document does not parse: {e:?}"))?;
    Ok(doc.traceEvents.iter().filter(|e| e.name == name).count())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut samples: u64 = 200;
    let mut json_out = false;
    let mut validate = false;
    let mut export_path: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--samples" => {
                i += 1;
                samples = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--samples needs a number");
            }
            "--json" => json_out = true,
            "--validate" => validate = true,
            "--export" => {
                i += 1;
                export_path = Some(argv.get(i).expect("--export needs a path").clone());
            }
            other => {
                eprintln!("unknown flag `{other}` (see source header for usage)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // A 4-replica (f=1) cluster plus one client = 5 nodes.
    let node_count = Config::new(1).n() as u64 + 1;
    let mut failures: Vec<String> = Vec::new();
    let mut classic = Vec::new();
    let mut fast = Vec::new();
    for fast_path in [false, true] {
        for spec in &WORKLOADS {
            let out = run_workload(spec, samples, fast_path);
            let tag = if fast_path { "fast" } else { "classic" };
            if validate {
                match validate_chrome_trace(&out.chrome_json, node_count) {
                    Ok(n) => eprintln!(
                        "validate {} [{tag}]: {} events conform to the schema",
                        spec.label, n
                    ),
                    Err(e) => {
                        failures.push(format!("{} [{tag}]: chrome trace schema: {e}", spec.label))
                    }
                }
                if out.report.error_pct > 5.0 {
                    failures.push(format!(
                        "{} [{tag}]: assembled phase sum off by {:.2}% from measured latency \
                         (limit 5%)",
                        spec.label, out.report.error_pct
                    ));
                }
                // Counter-vs-trace cross-check: the health registry and
                // the trace are independent observers of the same run,
                // so they must agree on the fast-path commit count. The
                // equality is only exact when nothing fell back (a
                // fallback closes the fast span without a fast commit),
                // and these runs are fault-free, so fallbacks are a
                // failure in their own right.
                if fast_path {
                    if out.fast_fallbacks_counted > 0 {
                        failures.push(format!(
                            "{} [{tag}]: {} fast-path fallbacks in a fault-free run",
                            spec.label, out.fast_fallbacks_counted
                        ));
                    } else if out.fast_commit_closes != out.fast_commits_counted {
                        failures.push(format!(
                            "{} [{tag}]: counter/trace mismatch: {} fast commits counted vs {} \
                             fast-commit spans closed",
                            spec.label, out.fast_commits_counted, out.fast_commit_closes
                        ));
                    } else {
                        eprintln!(
                            "validate {} [{tag}]: {} fast commits agree between counters and trace",
                            spec.label, out.fast_commits_counted
                        );
                    }
                } else if out.fast_commits_counted != 0 || out.fast_commit_closes != 0 {
                    failures.push(format!(
                        "{} [{tag}]: fast-path activity ({} counted, {} spans) with the fast \
                         path disabled",
                        spec.label, out.fast_commits_counted, out.fast_commit_closes
                    ));
                }
            }
            if spec.label == "0/0" && !fast_path {
                if let Some(path) = &export_path {
                    std::fs::write(path, &out.chrome_json).expect("write --export file");
                    eprintln!("wrote Chrome trace JSON to {path}");
                }
            }
            if fast_path {
                fast.push(out.report);
            } else {
                classic.push(out.report);
            }
        }
    }

    // The lease-read path never joins the ordered span chain (it is a
    // single instant event at the serving holder), so it gets its own
    // validation run instead of a phase table: the exported trace must
    // conform to the schema, contain lease-read events, and the workload
    // must complete without a single ordered-path fallback.
    if validate {
        let (lease_json, lease_reads, fallbacks) = run_lease_workload(samples);
        match validate_chrome_trace(&lease_json, node_count) {
            Ok(n) => eprintln!("validate lease [read-mix]: {n} events conform to the schema"),
            Err(e) => failures.push(format!("lease [read-mix]: chrome trace schema: {e}")),
        }
        match count_events(&lease_json, "lease-read") {
            Ok(0) => failures
                .push("lease [read-mix]: no lease-read events in exported trace".to_string()),
            // Counter-vs-trace cross-check: every lease-served read
            // emits exactly one `lease-read` instant, so the health
            // counter and the trace must agree on the count.
            Ok(n) if n as u64 != lease_reads => failures.push(format!(
                "lease [read-mix]: counter/trace mismatch: {lease_reads} lease reads counted \
                 vs {n} lease-read events in the trace"
            )),
            Ok(n) => eprintln!(
                "validate lease [read-mix]: {n} lease-read events ({lease_reads} lease reads \
                 served, {fallbacks} fallbacks) — counters and trace agree"
            ),
            Err(e) => failures.push(format!("lease [read-mix]: {e}")),
        }
        if fallbacks > 0 {
            failures.push(format!(
                "lease [read-mix]: {fallbacks} reads fell back to the ordered path"
            ));
        }
    }

    if json_out {
        let reports: Vec<&Report> = classic.iter().chain(&fast).collect();
        println!(
            "{}",
            serde_json::to_string(&reports).expect("reports serialize")
        );
    } else {
        for r in classic.iter().chain(&fast) {
            print_report(r);
        }
        print_comparison(&classic, &fast);
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
    if validate {
        eprintln!("all validation checks passed");
    }
}
