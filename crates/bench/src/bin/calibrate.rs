//! Calibration probe: prints the key latency/throughput numbers next to
//! the paper's values so the cost model can be tuned. Not part of the
//! figure suite.

use bft_core::config::Config;
use bft_workloads::harness::*;

fn main() {
    println!("== latency (4 replicas, 1 client, arg 8B) ==");
    for result in [0usize, 1024, 4096, 8192] {
        let rw = bft_latency(Config::new(1), OpShape::rw(8, result), 50);
        let ro = bft_latency(Config::new(1), OpShape::ro(8, result), 50);
        let nr = norep_latency(OpShape::rw(8, result), 50);
        println!(
            "result={result:>5}B  BFT-RW={:>7.0}us  BFT-RO={:>7.0}us  NO-REP={:>7.0}us  slowdownRW={:.2} slowdownRO={:.2}",
            rw.mean / 1e3,
            ro.mean / 1e3,
            nr.mean / 1e3,
            rw.mean / nr.mean,
            ro.mean / nr.mean,
        );
    }
    println!("== latency vs arg size ==");
    for arg in [0usize, 1024, 4096, 8192] {
        let f1 = bft_latency(Config::new(1), OpShape::rw(arg, 8), 50);
        let f2 = bft_latency(Config::new(2), OpShape::rw(arg, 8), 50);
        let nr = norep_latency(OpShape::rw(arg, 8), 50);
        println!(
            "arg={arg:>5}B  f1={:>7.0}us  f2={:>7.0}us  f2/f1={:.2}  slowdown_f1={:.2}",
            f1.mean / 1e3,
            f2.mean / 1e3,
            f2.mean / f1.mean,
            f1.mean / nr.mean,
        );
    }
    println!("== throughput (clients sweep) ==");
    for (a, b) in [(0usize, 0usize), (0, 4096), (4096, 0)] {
        for clients in [10u32, 50, 100, 200] {
            let rw = bft_throughput(Config::new(1), clients, OpShape::rw(a, b));
            let ro = bft_throughput(Config::new(1), clients, OpShape::ro(a, b));
            let nr = norep_throughput(clients, OpShape::rw(a, b));
            println!(
                "op {}/{} clients={clients:>3}  BFT-RW={:>7.0}  BFT-RO={:>7.0}  NO-REP={:>7.0} (drops {})",
                a / 1024,
                b / 1024,
                rw.ops_per_sec,
                ro.ops_per_sec,
                nr.ops_per_sec,
                nr.drops
            );
        }
    }
}
